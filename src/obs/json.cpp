#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace lejit::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  before_value();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view fragment) {
  before_value();
  out_ += fragment;
  return *this;
}

namespace {

[[noreturn]] void kind_error(JsonValue::Kind want, JsonValue::Kind got) {
  const auto name = [](JsonValue::Kind k) -> const char* {
    switch (k) {
      case JsonValue::Kind::kNull: return "null";
      case JsonValue::Kind::kBool: return "bool";
      case JsonValue::Kind::kNumber: return "number";
      case JsonValue::Kind::kString: return "string";
      case JsonValue::Kind::kArray: return "array";
      case JsonValue::Kind::kObject: return "object";
    }
    return "?";
  };
  throw util::RuntimeError(std::string("JSON value is ") + name(got) +
                           ", expected " + name(want));
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error(Kind::kBool, kind_);
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_error(Kind::kNumber, kind_);
  return number_;
}

std::int64_t JsonValue::as_int() const {
  const double v = as_number();
  // Range-check before the cast: converting a double beyond int64 range is
  // UB, and hostile documents ("1e300") reach this path. 2^63 is exactly
  // representable as a double, so the half-open comparison below is exact.
  constexpr double kLimit = 9223372036854775808.0;  // 2^63
  if (!(v >= -kLimit && v < kLimit))
    throw util::RuntimeError("JSON number is out of integer range");
  const auto i = static_cast<std::int64_t>(v);
  if (static_cast<double>(i) != v)
    throw util::RuntimeError("JSON number is not an exact integer");
  return i;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error(Kind::kString, kind_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) kind_error(Kind::kArray, kind_);
  return array_;
}

const JsonValue& JsonValue::get(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr)
    throw util::RuntimeError("JSON object has no member '" +
                             std::string(key) + "'");
  return *v;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) kind_error(Kind::kObject, kind_);
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_object(
    std::map<std::string, JsonValue, std::less<>> v) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(v);
  return out;
}

namespace {

// Recursive-descent parser over a string_view; position-tracking for error
// messages. Depth-capped: the repo's documents are shallow, and the cap turns
// a hostile deeply-nested input into an exception instead of a stack
// overflow.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw util::RuntimeError("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    skip_ws();
    JsonValue out;
    switch (peek()) {
      case '{': out = parse_object(); break;
      case '[': out = parse_array(); break;
      case '"': out = JsonValue::make_string(parse_string()); break;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        out = JsonValue::make_bool(true);
        break;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        out = JsonValue::make_bool(false);
        break;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        out = JsonValue::make_null();
        break;
      default: out = parse_number(); break;
    }
    --depth_;
    return out;
  }

  JsonValue parse_object() {
    expect('{');
    std::map<std::string, JsonValue, std::less<>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      // Duplicate keys: last one wins, like every lenient reader; the
      // writer never emits duplicates.
      members.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-')
        ++pos_;
      else
        break;
    }
    if (pos_ == start) fail("expected a value");
    // strtod needs NUL termination; numbers are short, so copy.
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    return JsonValue::make_number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace lejit::obs
