#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace lejit::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  before_value();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view fragment) {
  before_value();
  out_ += fragment;
  return *this;
}

}  // namespace lejit::obs
