#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace lejit::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}

void set_metrics_enabled(bool on) noexcept {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

HistogramOptions HistogramOptions::latency_us() {
  HistogramOptions o;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0)
    for (const double step : {1.0, 2.0, 5.0}) o.bounds.push_back(decade * step);
  o.bounds.push_back(1e7);  // 10 s
  return o;
}

HistogramOptions HistogramOptions::linear(double lo, double hi, int n) {
  LEJIT_REQUIRE(n > 0 && lo < hi, "bad linear histogram spec");
  HistogramOptions o;
  const double w = (hi - lo) / n;
  for (int i = 1; i <= n; ++i) o.bounds.push_back(lo + w * i);
  return o;
}

Histogram::Histogram(HistogramOptions opts) : bounds_(std::move(opts.bounds)) {
  LEJIT_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bucket bounds must be ascending");
  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double v) noexcept {
  if (!metrics_enabled()) return;
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Relaxed CAS accumulators: exact under concurrency, no lock.
  double s = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(s, s + v, std::memory_order_relaxed)) {
  }
  double m = max_.load(std::memory_order_relaxed);
  while (v > m &&
         !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
  }
}

double Histogram::percentile(double p) const {
  const std::int64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(n);
  double cumulative = 0.0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const auto in_bucket =
        static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    // Empty buckets carry no mass and must never be selected: with p = 0 (or
    // a leading run of empty buckets) `cumulative + in_bucket < target` is
    // false at the first bucket, which used to return that empty bucket's
    // lower edge (0.0) instead of a value the histogram actually observed.
    if (in_bucket <= 0.0) continue;
    if (cumulative + in_bucket < target) {
      cumulative += in_bucket;
      continue;
    }
    if (i == bounds_.size()) return max();  // overflow bucket
    const double hi = bounds_[i];
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    // Interpolate within the selected bucket. p = 0 lands on the first
    // non-empty bucket's lower edge; p = 1 on min(its upper edge, observed
    // max) — both inside the observed range, whether or not all mass sits in
    // a single bucket.
    const double frac = (target - cumulative) / in_bucket;
    return std::min(lo + (hi - lo) * frac, max() > 0.0 ? max() : hi);
  }
  return max();
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const util::MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const util::MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      HistogramOptions opts) {
  const util::MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(opts));
  return *slot;
}

void MetricsRegistry::reset() {
  const util::MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::to_json() const {
  const util::MutexLock lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.key(name).value(c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.key(name).value(g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(h->count());
    w.key("sum").value(h->sum());
    w.key("mean").value(h->mean());
    w.key("max").value(h->max());
    w.key("p50").value(h->percentile(0.50));
    w.key("p90").value(h->percentile(0.90));
    w.key("p99").value(h->percentile(0.99));
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string MetricsRegistry::pretty() const {
  const util::MutexLock lock(mu_);
  std::string out = "== metrics ==\n";
  char buf[192];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof buf, "  %-36s %12lld\n", name.c_str(),
                  static_cast<long long>(c->value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof buf, "  %-36s %12.3f\n", name.c_str(),
                  g->value());
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(buf, sizeof buf,
                  "  %-36s n=%-8lld mean=%-10.2f p50=%-10.2f p90=%-10.2f "
                  "p99=%-10.2f max=%.2f\n",
                  name.c_str(), static_cast<long long>(h->count()), h->mean(),
                  h->percentile(0.50), h->percentile(0.90), h->percentile(0.99),
                  h->max());
    out += buf;
  }
  return out;
}

}  // namespace lejit::obs
