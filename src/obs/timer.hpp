// Monotonic wall-clock primitives shared by benches, metrics, and spans.
//
// Moved here from util/timer.hpp so the observability layer and the bench
// harnesses read the same clock; util/timer.hpp remains as a forwarder.
#pragma once

#include <chrono>
#include <cstdint>

namespace lejit::obs {

// Nanoseconds on the process-wide monotonic clock. The absolute value is
// meaningless; differences are span/timer durations.
inline std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Monotonic stopwatch. Start on construction; read elapsed time at will.
class Timer {
 public:
  Timer() noexcept : start_(now_ns()) {}

  void reset() noexcept { start_ = now_ns(); }

  std::int64_t elapsed_ns() const noexcept { return now_ns() - start_; }

  double elapsed_seconds() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

  double elapsed_ms() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-6;
  }

 private:
  std::int64_t start_;
};

}  // namespace lejit::obs
