// Minimal streaming JSON writer for telemetry export.
//
// The observability layer (metrics snapshots, trace files) and the bench
// harness JSON reports all emit JSON; this writer keeps them consistent and
// correct (escaping, comma placement, non-finite doubles) without pulling in
// an external JSON dependency.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lejit::obs {

// Escape `s` for inclusion between JSON double quotes (quotes not included).
std::string json_escape(std::string_view s);

// Append-only writer with automatic comma management. Usage:
//
//   JsonWriter w;
//   w.begin_object();
//   w.key("counts").begin_array().value(1).value(2).end_array();
//   w.key("name").value("smt.checks");
//   w.end_object();
//   std::string doc = w.str();
//
// Misuse (a key outside an object, unbalanced end_*) trips an assertion in
// debug builds and degrades to syntactically odd output otherwise — callers
// are all in-repo, so the writer favors being small over being defensive.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);  // NaN/Inf are emitted as null
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  // Splice a pre-rendered JSON fragment in value position (trusted input).
  JsonWriter& raw(std::string_view fragment);

  const std::string& str() const { return out_; }

 private:
  void before_value();

  std::string out_;
  // One entry per open container: true once the first element was written.
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

}  // namespace lejit::obs
