// Minimal streaming JSON writer + recursive-descent reader.
//
// The observability layer (metrics snapshots, trace files) and the bench
// harness JSON reports all emit JSON; this writer keeps them consistent and
// correct (escaping, comma placement, non-finite doubles) without pulling in
// an external JSON dependency. The reader exists for the few places that
// load JSON back in (plan artifacts): a strict, whitespace-tolerant parser
// over the same subset the writer emits.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace lejit::obs {

// Escape `s` for inclusion between JSON double quotes (quotes not included).
std::string json_escape(std::string_view s);

// Append-only writer with automatic comma management. Usage:
//
//   JsonWriter w;
//   w.begin_object();
//   w.key("counts").begin_array().value(1).value(2).end_array();
//   w.key("name").value("smt.checks");
//   w.end_object();
//   std::string doc = w.str();
//
// Misuse (a key outside an object, unbalanced end_*) trips an assertion in
// debug builds and degrades to syntactically odd output otherwise — callers
// are all in-repo, so the writer favors being small over being defensive.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);  // NaN/Inf are emitted as null
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  // Splice a pre-rendered JSON fragment in value position (trusted input).
  JsonWriter& raw(std::string_view fragment);

  const std::string& str() const { return out_; }

 private:
  void before_value();

  std::string out_;
  // One entry per open container: true once the first element was written.
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

// Parsed JSON document node. Numbers are kept as doubles (integers that fit
// a double round-trip exactly; values wider than 53 bits — e.g. rule-set
// fingerprints — must be serialized as strings). Object member order is not
// preserved.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }

  // Typed accessors: throw util::RuntimeError on a kind mismatch, so loader
  // code reads like a schema and malformed documents fail with a message
  // naming the expectation instead of corrupting state.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;  // as_number, checked integral
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;

  // Object access. get() throws when the member is missing; find() returns
  // nullptr instead.
  const JsonValue& get(std::string_view key) const;
  const JsonValue* find(std::string_view key) const;

  static JsonValue make_null() { return JsonValue{}; }
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> v);
  static JsonValue make_object(std::map<std::string, JsonValue, std::less<>> v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue, std::less<>> object_;
};

// Parse one JSON document (trailing whitespace allowed, nothing else after
// the root value). Throws util::RuntimeError with a byte offset on malformed
// input. Supports the full JSON grammar except \uXXXX escapes outside the
// ASCII range (surrogate pairs are rejected; the repo never emits them).
JsonValue parse_json(std::string_view text);

}  // namespace lejit::obs
