// Leveled diagnostic logging, off by default.
//
// The hot paths must stay clean: a disabled log statement costs one relaxed
// atomic load, and the message expression is not evaluated (the macros guard
// before building the string). Output goes to stderr so row text on stdout
// stays machine-consumable.
//
// Level selection, highest precedence first:
//   1. Logger::set_level(...)        — programmatic (lejit_cli --log-level)
//   2. LEJIT_LOG environment variable ("error"|"warn"|"info"|"debug"|"off")
//   3. default: off
#pragma once

#include <atomic>
#include <string>
#include <string_view>

namespace lejit::obs {

enum class LogLevel : int { kOff = 0, kError, kWarn, kInfo, kDebug };

class Logger {
 public:
  // Current threshold; first call reads LEJIT_LOG.
  static LogLevel level() noexcept;
  static void set_level(LogLevel level) noexcept;

  // "debug" → kDebug etc.; returns false (and leaves `out` alone) on an
  // unrecognized name.
  static bool parse_level(std::string_view name, LogLevel* out) noexcept;
  static std::string_view level_name(LogLevel level) noexcept;

  static bool enabled(LogLevel level) noexcept {
    return static_cast<int>(level) <= static_cast<int>(Logger::level());
  }

  // Emit "[lejit][warn] msg\n" to stderr (serialized across threads).
  // Prefer the LEJIT_LOG_* macros, which make the message lazy.
  static void write(LogLevel level, std::string_view msg);
};

}  // namespace lejit::obs

// The message argument is only evaluated when the level is enabled, so
// building it may be arbitrarily expensive:
//   LEJIT_LOG_DEBUG("check #" + std::to_string(n) + " unsat");
#define LEJIT_LOG_AT(lvl, msg)                                \
  do {                                                        \
    if (::lejit::obs::Logger::enabled(lvl))                   \
      ::lejit::obs::Logger::write((lvl), (msg));              \
  } while (false)

#define LEJIT_LOG_ERROR(msg) LEJIT_LOG_AT(::lejit::obs::LogLevel::kError, msg)
#define LEJIT_LOG_WARN(msg) LEJIT_LOG_AT(::lejit::obs::LogLevel::kWarn, msg)
#define LEJIT_LOG_INFO(msg) LEJIT_LOG_AT(::lejit::obs::LogLevel::kInfo, msg)
#define LEJIT_LOG_DEBUG(msg) LEJIT_LOG_AT(::lejit::obs::LogLevel::kDebug, msg)
