#include "obs/trace.hpp"

#include <fstream>
#include <functional>
#include <thread>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace lejit::obs {

namespace {

std::uint32_t current_tid() noexcept {
  // Stable small-ish id per thread; chrome://tracing only needs distinctness.
  static thread_local const std::uint32_t tid = static_cast<std::uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffff);
  return tid;
}

}  // namespace

std::string_view phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kLmForward: return "lm_forward";
    case Phase::kSolverCheck: return "solver_check";
    case Phase::kMaskBuild: return "mask_build";
    case Phase::kSampling: return "sampling";
    case Phase::kRuleMining: return "rule_mining";
    case Phase::kLint: return "lint";
    case Phase::kPlanVerify: return "plan_verify";
    case Phase::kCount: break;
  }
  return "unknown";
}

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // never destroyed
  return *tracer;
}

Tracer::PhaseTotals Tracer::totals(Phase p) const noexcept {
  const auto i = static_cast<std::size_t>(p);
  return {counts_[i].load(std::memory_order_relaxed),
          ns_[i].load(std::memory_order_relaxed)};
}

void Tracer::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  for (auto& n : ns_) n.store(0, std::memory_order_relaxed);
  const util::MutexLock lock(events_mu_);
  events_.clear();
}

void Tracer::start_capture() {
  const util::MutexLock lock(events_mu_);
  capture_start_ns_ = now_ns();
  events_.clear();
  capturing_.store(true, std::memory_order_relaxed);
}

void Tracer::stop_capture() noexcept {
  capturing_.store(false, std::memory_order_relaxed);
}

std::size_t Tracer::num_events() const {
  const util::MutexLock lock(events_mu_);
  return events_.size();
}

void Tracer::record(Phase p, std::int64_t start_ns,
                    std::int64_t dur_ns) noexcept {
  const auto i = static_cast<std::size_t>(p);
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  ns_[i].fetch_add(dur_ns, std::memory_order_relaxed);
  if (!capturing_.load(std::memory_order_relaxed)) return;
  const util::MutexLock lock(events_mu_);
  events_.push_back({p, start_ns, dur_ns, current_tid()});
}

std::string Tracer::trace_json() const {
  const util::MutexLock lock(events_mu_);
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const Event& e : events_) {
    w.begin_object();
    w.key("name").value(phase_name(e.phase));
    w.key("cat").value("lejit");
    w.key("ph").value("X");
    w.key("ts").value(static_cast<double>(e.start_ns - capture_start_ns_) *
                      1e-3);
    w.key("dur").value(static_cast<double>(e.dur_ns) * 1e-3);
    w.key("pid").value(std::int64_t{1});
    w.key("tid").value(static_cast<std::int64_t>(e.tid));
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.end_object();
  return w.str();
}

void Tracer::write_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  out << trace_json();
  if (!out) throw util::RuntimeError("cannot write trace file: " + path);
}

}  // namespace lejit::obs
