// Process-wide metrics: named counters, gauges, and fixed-bucket latency
// histograms with percentile export.
//
// Design goals, in order:
//   1. Near-zero cost when disabled. Every hot-path hook reduces to one
//      relaxed atomic load and a predictable branch; no clock is read and no
//      memory is written. Observability is compiled in everywhere and gated
//      at runtime (off by default, switched on by CLI flags / benches).
//   2. Thread-safe updates without locks. Counters and histogram buckets are
//      relaxed atomics; the decode batch driver and future servers can hammer
//      them from many threads.
//   3. Stable handles. Registered metrics live for the process lifetime and
//      never move, so call sites look a metric up once (function-local
//      static) and keep the reference.
//
// Export: `MetricsRegistry::to_json()` for machines, `pretty()` for humans.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/sync.hpp"

namespace lejit::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}

// Global on/off switch for all metric updates (counters, histograms, spans).
inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool on) noexcept;

// Monotonically increasing event count.
class Counter {
 public:
  void add(std::int64_t n = 1) noexcept {
    if (metrics_enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Last-write-wins instantaneous value (e.g. a duration, a set size).
class Gauge {
 public:
  void set(double v) noexcept {
    if (metrics_enabled()) v_.store(v, std::memory_order_relaxed);
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

struct HistogramOptions {
  // Ascending bucket upper bounds; an implicit +inf bucket follows the last.
  std::vector<double> bounds;

  // Exponential 1-2-5 ladder from 1 µs to 10 s — the default for latency
  // histograms recorded in microseconds.
  static HistogramOptions latency_us();
  // `n` equal-width buckets over [lo, hi] (plus the +inf overflow bucket).
  static HistogramOptions linear(double lo, double hi, int n);
};

// Fixed-bucket histogram with interpolated percentiles.
class Histogram {
 public:
  explicit Histogram(HistogramOptions opts = HistogramOptions::latency_us());

  void observe(double v) noexcept;

  std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const auto n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  double max() const noexcept { return max_.load(std::memory_order_relaxed); }

  // Interpolated p-th percentile (p in [0,1]) assuming a uniform
  // distribution within each bucket; values landing in the overflow bucket
  // report the observed max. 0 observations ⇒ 0.
  double percentile(double p) const;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  std::int64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;  // bounds_.size()+1
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

// Name → metric map. Lookup is mutex-protected (cold: once per call site);
// updates through the returned references are lock-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // `opts` is honored on first registration only.
  Histogram& histogram(const std::string& name, HistogramOptions opts =
                                                    HistogramOptions::latency_us());

  // Zero every registered metric. Registrations (and references handed out)
  // stay valid — benches call this between measured modes.
  void reset();

  // {"counters": {...}, "gauges": {...}, "histograms": {name:
  //  {count,sum,mean,max,p50,p90,p99}}} — keys sorted by metric name.
  std::string to_json() const;
  // Fixed-width human-readable dump of the same data.
  std::string pretty() const;

 private:
  MetricsRegistry() = default;

  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      LEJIT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ LEJIT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      LEJIT_GUARDED_BY(mu_);
};

}  // namespace lejit::obs
