// Scoped phase timers for the decode/solve hot path.
//
// A `Span` is a zero-allocation RAII timer tagged with a `Phase`. On
// destruction it folds its duration into the process-wide `Tracer`
// aggregates (per-phase call count + total ns) and — when a trace capture is
// active — appends a complete event to the trace buffer. Export the buffer
// with `Tracer::write_trace()`: the file loads directly into
// chrome://tracing / Perfetto ("X" complete events, microsecond timestamps).
//
// Spans nest naturally (a mask_build span encloses the solver_check spans
// it triggers); aggregate totals are therefore *inclusive* — the enclosing
// phase's total contains its children. The per-decode breakdown the paper's
// Fig. 3 discussion needs is lm_forward vs solver_check, which never nest
// within each other.
//
// Like all of obs, spans are inert unless `metrics_enabled()`: a disabled
// span reads one atomic and touches no clock.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/sync.hpp"

namespace lejit::obs {

// The decode pipeline's phases. Extend here (and in phase_name) as new
// subsystems grow instrumentation.
enum class Phase : int {
  kLmForward = 0,   // LanguageModel::logits
  kSolverCheck,     // smt::Solver::check_assuming
  kMaskBuild,       // per-token legal-set construction (includes its checks)
  kSampling,        // masked sampling from the LM distribution
  kRuleMining,      // rules::mine_rules
  kLint,            // lint::analyze (load-time rule-set static analysis)
  kPlanVerify,      // plan::verify::run (plan translation validation)
  kCount,
};

std::string_view phase_name(Phase p) noexcept;

class Tracer {
 public:
  static Tracer& instance();

  struct PhaseTotals {
    std::int64_t count = 0;
    std::int64_t total_ns = 0;
  };
  PhaseTotals totals(Phase p) const noexcept;

  // Zero the aggregates and drop any captured events (capture state and the
  // capture start time are preserved).
  void reset() noexcept;

  // Event capture for chrome://tracing. Capturing is independent of the
  // aggregate totals, which are always maintained while metrics are enabled.
  void start_capture();
  void stop_capture() noexcept;
  bool capturing() const noexcept {
    return capturing_.load(std::memory_order_relaxed);
  }
  std::size_t num_events() const;

  // {"traceEvents": [...], "displayTimeUnit": "ms"}
  std::string trace_json() const;
  // Write trace_json() to `path`; throws util::RuntimeError on I/O failure.
  void write_trace(const std::string& path) const;

  // Called by ~Span; also usable directly for phases timed by hand.
  void record(Phase p, std::int64_t start_ns, std::int64_t dur_ns) noexcept;

 private:
  Tracer() = default;

  struct Event {
    Phase phase;
    std::int64_t start_ns;
    std::int64_t dur_ns;
    std::uint32_t tid;
  };

  std::array<std::atomic<std::int64_t>, static_cast<int>(Phase::kCount)>
      counts_{};
  std::array<std::atomic<std::int64_t>, static_cast<int>(Phase::kCount)>
      ns_{};
  std::atomic<bool> capturing_{false};
  mutable util::Mutex events_mu_;
  std::int64_t capture_start_ns_ LEJIT_GUARDED_BY(events_mu_) = 0;
  std::vector<Event> events_ LEJIT_GUARDED_BY(events_mu_);
};

// RAII phase timer. Construct where the phase begins; the destructor records.
class Span {
 public:
  explicit Span(Phase phase) noexcept
      : phase_(phase), active_(metrics_enabled()) {
    if (active_) start_ = now_ns();
  }
  ~Span() {
    if (active_) Tracer::instance().record(phase_, start_, now_ns() - start_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Phase phase_;
  bool active_;
  std::int64_t start_ = 0;
};

}  // namespace lejit::obs
