#include "obs/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace lejit::obs {

namespace {

LogLevel level_from_env() noexcept {
  const char* env = std::getenv("LEJIT_LOG");
  LogLevel level = LogLevel::kOff;
  if (env != nullptr) Logger::parse_level(env, &level);
  return level;
}

std::atomic<int>& level_slot() noexcept {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

std::mutex& write_mutex() noexcept {
  static std::mutex* mu = new std::mutex();  // never destroyed
  return *mu;
}

}  // namespace

LogLevel Logger::level() noexcept {
  return static_cast<LogLevel>(level_slot().load(std::memory_order_relaxed));
}

void Logger::set_level(LogLevel level) noexcept {
  level_slot().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool Logger::parse_level(std::string_view name, LogLevel* out) noexcept {
  if (name == "off" || name == "none") *out = LogLevel::kOff;
  else if (name == "error") *out = LogLevel::kError;
  else if (name == "warn" || name == "warning") *out = LogLevel::kWarn;
  else if (name == "info") *out = LogLevel::kInfo;
  else if (name == "debug") *out = LogLevel::kDebug;
  else return false;
  return true;
}

std::string_view Logger::level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kOff: return "off";
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "unknown";
}

void Logger::write(LogLevel level, std::string_view msg) {
  const std::lock_guard<std::mutex> lock(write_mutex());
  std::fprintf(stderr, "[lejit][%.*s] %.*s\n",
               static_cast<int>(level_name(level).size()),
               level_name(level).data(), static_cast<int>(msg.size()),
               msg.data());
}

}  // namespace lejit::obs
