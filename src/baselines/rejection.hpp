// Rejection sampling baseline (paper §4, baseline ii).
//
// Sample from the unguided LM and discard outputs that violate the rule set,
// retrying until a compliant sample emerges or the attempt budget runs out.
// Guarantees compliance like LeJIT, but — as the paper measures in Fig. 3
// (right) and Fig. 5 — at a large runtime multiple, and with a distorted
// output distribution (discarding near-miss samples reweights the learned
// distribution toward the easy-to-satisfy region).
#pragma once

#include "core/decoder.hpp"
#include "rules/checker.hpp"

namespace lejit::baselines {

struct RejectionConfig {
  int max_attempts = 500;
  // Structure (grammar) is still enforced so attempts are parseable rows;
  // only the *rules* are left to luck — matching the paper's setup where
  // GPT-2 reliably produces well-formed rows but violates semantics.
  core::GuidanceMode base_mode = core::GuidanceMode::kSyntax;
  lm::SamplerConfig sampler{};
};

struct RejectionResult {
  core::DecodeResult decode;  // the accepted (or final rejected) sample
  int attempts = 0;
  bool compliant = false;
};

class RejectionSampler {
 public:
  RejectionSampler(const lm::LanguageModel& model,
                   const lm::CharTokenizer& tokenizer,
                   const telemetry::RowLayout& layout, rules::RuleSet rules,
                   RejectionConfig config = {});

  RejectionResult generate(util::Rng& rng, std::string_view prompt = {});

 private:
  rules::RuleSet rules_;
  RejectionConfig config_;
  core::GuidedDecoder decoder_;
};

}  // namespace lejit::baselines
