#include "baselines/rejection.hpp"

namespace lejit::baselines {

RejectionSampler::RejectionSampler(const lm::LanguageModel& model,
                                   const lm::CharTokenizer& tokenizer,
                                   const telemetry::RowLayout& layout,
                                   rules::RuleSet rules,
                                   RejectionConfig config)
    : rules_(std::move(rules)), config_(config),
      decoder_(model, tokenizer, layout,
               rules::RuleSet{},  // the base sampler enforces no rules
               core::DecoderConfig{.mode = config.base_mode,
                                   .sampler = config.sampler}) {}

RejectionResult RejectionSampler::generate(util::Rng& rng,
                                           std::string_view prompt) {
  RejectionResult result;
  for (int attempt = 1; attempt <= config_.max_attempts; ++attempt) {
    result.attempts = attempt;
    result.decode = decoder_.generate(rng, prompt);
    if (!result.decode.ok || !result.decode.window) continue;
    if (rules::violated_rules(rules_, *result.decode.window).empty()) {
      result.compliant = true;
      return result;
    }
  }
  return result;  // budget exhausted: return the last (violating) sample
}

}  // namespace lejit::baselines
