// Zoom2Net substitute: the task-specific imputation baseline of Fig. 3/4.
//
// Zoom2Net (SIGCOMM '24) couples a trained imputation model with a
// Constraint Enforcement Module (CEM) that post-corrects outputs against a
// handful of hand-written rules. We reproduce that architecture with a
// ridge-regression imputer (closed-form fit of coarse → fine) followed by a
// deterministic one-pass CEM enforcing the same four manual rules as
// rules::manual_rules — and, like the original, nothing beyond them. That
// asymmetry (4 hand rules vs. the full mined set) is exactly what Fig. 3
// (left) measures.
#pragma once

#include <span>
#include <vector>

#include "telemetry/schema.hpp"
#include "util/rng.hpp"

namespace lejit::baselines {

struct Zoom2NetConfig {
  double ridge = 1.0;        // L2 regularization of the linear imputer
  bool enable_cem = true;    // disable for the "raw regressor" ablation
  // Training-time rule enforcement (§2.2's other paradigm, in the style of
  // physics-informed losses): weight of a soft penalty on
  // (Σ_t ŷ_t − total)² added to the least-squares objective. The fit stays
  // closed-form (a joint 6W×6W system), the sum rule is *encouraged* — and,
  // as the paper argues, still not guaranteed at inference time.
  double sum_penalty = 0.0;
};

class Zoom2NetImputer {
 public:
  // Fit on training windows (coarse features → fine targets).
  Zoom2NetImputer(std::span<const telemetry::Window> train,
                  const telemetry::Limits& limits, Zoom2NetConfig config = {});

  // Impute the fine series for a window's coarse values. The returned
  // window copies the input's coarse fields and replaces `fine`.
  telemetry::Window impute(const telemetry::Window& coarse) const;

  const telemetry::Limits& limits() const { return limits_; }

 private:
  std::vector<double> features(const telemetry::Window& w) const;
  void apply_cem(telemetry::Window& w) const;

  telemetry::Limits limits_;
  Zoom2NetConfig config_;
  // weights_[t] holds the coefficient vector for fine slot t.
  std::vector<std::vector<double>> weights_;
};

}  // namespace lejit::baselines
