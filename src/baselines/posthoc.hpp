// Post-inference SMT repair (paper §2.2, "enforcing rules post-inference").
//
// Let the model generate freely, then hand the violating output to the SMT
// solver with the rules and ask for the *nearest* compliant assignment under
// L1 distance (the f_Δ mitigation the paper describes). Correct but — as
// §2.2 argues and Fig. 1a illustrates — unaware of the learned distribution:
// the projection can land on statistically implausible points.
#pragma once

#include <optional>

#include "rules/rule.hpp"
#include "smt/solver.hpp"

namespace lejit::baselines {

struct RepairResult {
  telemetry::Window window;
  bool feasible = false;  // false ⇔ no compliant point exists
  bool changed = false;   // any field moved
  smt::Int l1_distance = 0;
};

class PostHocRepairer {
 public:
  PostHocRepairer(const telemetry::RowLayout& layout, rules::RuleSet rules);

  // Project `w` onto the rule-compliant set, minimizing Σ|field − original|.
  // With `pin_coarse` the coarse fields are held fixed (imputation-task
  // repair: only the fine series may move).
  RepairResult repair(const telemetry::Window& w, bool pin_coarse) const;

 private:
  telemetry::RowLayout layout_;
  rules::RuleSet rules_;
};

}  // namespace lejit::baselines
