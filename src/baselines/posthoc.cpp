#include "baselines/posthoc.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lejit::baselines {

using smt::LinExpr;
using smt::VarId;
using telemetry::Int;

PostHocRepairer::PostHocRepairer(const telemetry::RowLayout& layout,
                                 rules::RuleSet rules)
    : layout_(layout), rules_(std::move(rules)) {}

RepairResult PostHocRepairer::repair(const telemetry::Window& w,
                                     bool pin_coarse) const {
  RepairResult result;
  result.window = w;

  // Fresh solver per repair: field variables, rules, then one deviation
  // variable per movable field with |x_i − v_i| linearized as d_i ≥ ±(x_i−v_i).
  // A modest node budget keeps worst-case optimality proofs cheap; minimize()
  // degrades to best-effort (still feasible, near-optimal) beyond it.
  smt::Solver solver(smt::SolverConfig{.max_nodes = 40'000});
  const std::vector<VarId> vars = rules::declare_fields(solver, layout_);
  rules::assert_rules(solver, rules_);

  const std::vector<Int> original = rules::field_assignment(w);
  LEJIT_REQUIRE(original.size() == vars.size(),
                "window does not match layout");

  LinExpr cost;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    const bool coarse = !layout_.fields[i].is_fine;
    // Clamp the anchor into the variable's domain so pinning cannot be
    // trivially unsat for out-of-domain generated values.
    const Int anchor =
        std::clamp<Int>(original[i], 0, layout_.fields[i].max_value);
    if (pin_coarse && coarse) {
      solver.add(smt::eq(LinExpr(vars[i]), LinExpr(anchor)));
      continue;
    }
    const VarId d = solver.add_var("d_" + layout_.fields[i].name, 0,
                                   layout_.fields[i].max_value);
    solver.add(smt::ge(LinExpr(d), LinExpr(vars[i]) - LinExpr(anchor)));
    solver.add(smt::ge(LinExpr(d), LinExpr(anchor) - LinExpr(vars[i])));
    cost += LinExpr(d);
  }

  const auto best = solver.minimize(cost);
  if (!best) return result;  // infeasible (e.g. pinned coarse contradicts rules)

  result.feasible = true;
  result.l1_distance = best->cost;
  std::vector<Int> repaired(vars.size());
  for (std::size_t i = 0; i < vars.size(); ++i)
    repaired[i] = best->model[static_cast<std::size_t>(vars[i].index)];
  result.changed = repaired != original;

  telemetry::Window& out = result.window;
  out.total = repaired[0];
  out.ecn = repaired[1];
  out.rtx = repaired[2];
  out.conn = repaired[3];
  out.egress = repaired[4];
  out.fine.assign(repaired.begin() + telemetry::kNumCoarse, repaired.end());
  return result;
}

}  // namespace lejit::baselines
