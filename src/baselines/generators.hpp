// Synthetic-data-generation baselines (Fig. 5): statistical stand-ins for
// NetShare, E-WGAN-GP, CTGAN, TVAE, and REaLTabFormer.
//
// Each substitute keeps the property the paper's comparison hinges on
// (DESIGN.md §3): competitive marginal/joint fidelity on the coarse signals
// with no mechanism for satisfying the mined rule set. One class per
// generator family, all behind a common interface:
//   GaussianCopulaGenerator (NetShare)      — empirical marginals tied by a
//                                             Gaussian copula
//   JitterResampleGenerator (E-WGAN-GP)     — training rows + Gaussian noise
//                                             (a GAN that memorized well)
//   ModeClusterGenerator    (CTGAN)         — per-field mode-specific
//                                             normalization, independent fields
//   LatentGaussianGenerator (TVAE)          — full-covariance Gaussian in
//                                             data space (linear-decoder VAE)
//   NgramRowGenerator       (REaLTabFormer) — autoregressive char model over
//                                             row text, grammar-constrained
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/decoder.hpp"
#include "lm/ngram.hpp"
#include "lm/tokenizer.hpp"
#include "telemetry/text.hpp"
#include "util/rng.hpp"

namespace lejit::baselines {

// Generates coarse-only windows (fine is filled with zeros; synthesis-task
// evaluation only reads the coarse fields and coarse-only rules).
class CoarseGenerator {
 public:
  virtual ~CoarseGenerator() = default;
  virtual const std::string& name() const = 0;
  virtual telemetry::Window sample(util::Rng& rng) const = 0;
};

class GaussianCopulaGenerator final : public CoarseGenerator {
 public:
  GaussianCopulaGenerator(std::span<const telemetry::Window> train,
                          const telemetry::Limits& limits);
  const std::string& name() const override { return name_; }
  telemetry::Window sample(util::Rng& rng) const override;

 private:
  std::string name_ = "NetShare*";
  telemetry::Limits limits_;
  std::vector<std::vector<telemetry::Int>> marginals_;  // sorted, per field
  std::vector<double> chol_;                            // 5×5 lower factor
};

class JitterResampleGenerator final : public CoarseGenerator {
 public:
  JitterResampleGenerator(std::span<const telemetry::Window> train,
                          const telemetry::Limits& limits,
                          double noise_frac = 0.05);
  const std::string& name() const override { return name_; }
  telemetry::Window sample(util::Rng& rng) const override;

 private:
  std::string name_ = "E-WGAN-GP*";
  telemetry::Limits limits_;
  double noise_frac_;
  std::vector<std::vector<telemetry::Int>> rows_;  // coarse tuples
  std::vector<double> stddev_;                     // per field
};

class ModeClusterGenerator final : public CoarseGenerator {
 public:
  ModeClusterGenerator(std::span<const telemetry::Window> train,
                       const telemetry::Limits& limits, int modes = 5);
  const std::string& name() const override { return name_; }
  telemetry::Window sample(util::Rng& rng) const override;

 private:
  struct Mode {
    double weight, mean, stddev;
  };
  std::string name_ = "CTGAN*";
  telemetry::Limits limits_;
  std::vector<std::vector<Mode>> field_modes_;  // per field
};

class LatentGaussianGenerator final : public CoarseGenerator {
 public:
  LatentGaussianGenerator(std::span<const telemetry::Window> train,
                          const telemetry::Limits& limits);
  const std::string& name() const override { return name_; }
  telemetry::Window sample(util::Rng& rng) const override;

 private:
  std::string name_ = "TVAE*";
  telemetry::Limits limits_;
  std::vector<double> mean_;  // 5
  std::vector<double> chol_;  // 5×5 lower factor of the covariance
};

class NgramRowGenerator final : public CoarseGenerator {
 public:
  NgramRowGenerator(std::span<const telemetry::Window> train,
                    const telemetry::Limits& limits);
  const std::string& name() const override { return name_; }
  telemetry::Window sample(util::Rng& rng) const override;

 private:
  std::string name_ = "REaLTabFormer*";
  telemetry::Limits limits_;
  lm::CharTokenizer tokenizer_;
  std::unique_ptr<lm::NgramModel> model_;
  mutable std::unique_ptr<core::GuidedDecoder> decoder_;  // grammar-only
};

// Convenience: build all five, fitted on `train`.
std::vector<std::unique_ptr<CoarseGenerator>> make_all_generators(
    std::span<const telemetry::Window> train, const telemetry::Limits& limits);

}  // namespace lejit::baselines
