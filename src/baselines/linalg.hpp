// Small dense linear algebra for the statistical baselines: Gaussian
// elimination (ridge regression normal equations), Cholesky factorization
// (Gaussian/copula samplers), and the inverse normal CDF (copula fitting).
#pragma once

#include <vector>

namespace lejit::baselines {

// Solve A x = b for square A (row-major, n×n) with partial pivoting.
// Throws util::RuntimeError on a (numerically) singular system.
std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b,
                                 int n);

// Lower-triangular Cholesky factor of a symmetric positive-definite matrix
// (row-major n×n). A small ridge is added automatically if needed.
std::vector<double> cholesky(std::vector<double> a, int n);

// Standard normal CDF and its inverse (Acklam's approximation, |err|<1e-9).
double normal_cdf(double x);
double normal_inv(double p);

}  // namespace lejit::baselines
