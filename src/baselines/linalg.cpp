#include "baselines/linalg.hpp"

#include <cmath>

#include "util/error.hpp"

namespace lejit::baselines {

std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b,
                                 int n) {
  LEJIT_REQUIRE(static_cast<int>(a.size()) == n * n &&
                    static_cast<int>(b.size()) == n,
                "solve_linear dimension mismatch");
  const auto at = [&](int r, int c) -> double& {
    return a[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(c)];
  };
  for (int col = 0; col < n; ++col) {
    // Partial pivot.
    int pivot = col;
    for (int r = col + 1; r < n; ++r)
      if (std::abs(at(r, col)) > std::abs(at(pivot, col))) pivot = r;
    if (std::abs(at(pivot, col)) < 1e-12)
      throw util::RuntimeError("solve_linear: singular matrix");
    if (pivot != col) {
      for (int c = 0; c < n; ++c) std::swap(at(pivot, c), at(col, c));
      std::swap(b[static_cast<std::size_t>(pivot)],
                b[static_cast<std::size_t>(col)]);
    }
    for (int r = col + 1; r < n; ++r) {
      const double factor = at(r, col) / at(col, col);
      if (factor == 0.0) continue;
      for (int c = col; c < n; ++c) at(r, c) -= factor * at(col, c);
      b[static_cast<std::size_t>(r)] -=
          factor * b[static_cast<std::size_t>(col)];
    }
  }
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  for (int r = n - 1; r >= 0; --r) {
    double acc = b[static_cast<std::size_t>(r)];
    for (int c = r + 1; c < n; ++c)
      acc -= at(r, c) * x[static_cast<std::size_t>(c)];
    x[static_cast<std::size_t>(r)] = acc / at(r, r);
  }
  return x;
}

std::vector<double> cholesky(std::vector<double> a, int n) {
  LEJIT_REQUIRE(static_cast<int>(a.size()) == n * n,
                "cholesky dimension mismatch");
  const auto at = [&](std::vector<double>& m, int r, int c) -> double& {
    return m[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(c)];
  };
  // Retry with growing ridge until positive definite.
  for (double ridge = 0.0; ridge < 1.0; ridge = (ridge == 0.0 ? 1e-9 : ridge * 10)) {
    std::vector<double> l(a.size(), 0.0);
    bool ok = true;
    for (int i = 0; i < n && ok; ++i) {
      for (int j = 0; j <= i; ++j) {
        double sum = at(a, i, j) + (i == j ? ridge : 0.0);
        for (int k = 0; k < j; ++k) sum -= at(l, i, k) * at(l, j, k);
        if (i == j) {
          if (sum <= 0.0) {
            ok = false;
            break;
          }
          at(l, i, j) = std::sqrt(sum);
        } else {
          at(l, i, j) = sum / at(l, j, j);
        }
      }
    }
    if (ok) return l;
  }
  throw util::RuntimeError("cholesky: matrix not positive definite");
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_inv(double p) {
  LEJIT_REQUIRE(p > 0.0 && p < 1.0, "normal_inv requires p in (0,1)");
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > 1 - plow) {
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

}  // namespace lejit::baselines
