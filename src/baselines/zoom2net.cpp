#include "baselines/zoom2net.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/linalg.hpp"
#include "util/error.hpp"

namespace lejit::baselines {

using telemetry::Int;
using telemetry::Window;

std::vector<double> Zoom2NetImputer::features(const Window& w) const {
  return {1.0,
          static_cast<double>(w.total),
          static_cast<double>(w.ecn),
          static_cast<double>(w.rtx),
          static_cast<double>(w.conn),
          static_cast<double>(w.egress)};
}

Zoom2NetImputer::Zoom2NetImputer(std::span<const Window> train,
                                 const telemetry::Limits& limits,
                                 Zoom2NetConfig config)
    : limits_(limits), config_(config) {
  LEJIT_REQUIRE(!train.empty(), "Zoom2Net fit requires training windows");
  constexpr int kF = 6;  // bias + 5 coarse features
  const int w_slots = limits.window;

  // Normal equations, shared Gram matrix across output slots.
  std::vector<double> gram(kF * kF, 0.0);
  std::vector<std::vector<double>> xty(
      static_cast<std::size_t>(w_slots), std::vector<double>(kF, 0.0));
  std::vector<double> xt_total(kF, 0.0);  // Σ_i x_i · total_i
  for (const Window& w : train) {
    LEJIT_REQUIRE(static_cast<int>(w.fine.size()) == w_slots,
                  "window width mismatch");
    const std::vector<double> x = features(w);
    for (int i = 0; i < kF; ++i) {
      for (int j = 0; j < kF; ++j)
        gram[static_cast<std::size_t>(i * kF + j)] +=
            x[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(j)];
      for (int t = 0; t < w_slots; ++t)
        xty[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] +=
            x[static_cast<std::size_t>(i)] *
            static_cast<double>(w.fine[static_cast<std::size_t>(t)]);
      xt_total[static_cast<std::size_t>(i)] +=
          x[static_cast<std::size_t>(i)] * static_cast<double>(w.total);
    }
  }

  weights_.reserve(static_cast<std::size_t>(w_slots));
  if (config_.sum_penalty <= 0.0) {
    // Independent per-slot ridge fits.
    std::vector<double> ridged = gram;
    for (int i = 0; i < kF; ++i)
      ridged[static_cast<std::size_t>(i * kF + i)] += config_.ridge;
    for (int t = 0; t < w_slots; ++t)
      weights_.push_back(
          solve_linear(ridged, xty[static_cast<std::size_t>(t)], kF));
    return;
  }

  // Training-time rule enforcement: the soft penalty couples all slots, so
  // solve the joint (kF·W)×(kF·W) normal equations
  //   G z_t + λ G Σ_s z_s = Xᵀy_t + λ Xᵀtotal,   t = 0..W−1.
  const double lambda = config_.sum_penalty;
  const int dim = kF * w_slots;
  std::vector<double> joint(static_cast<std::size_t>(dim) *
                                static_cast<std::size_t>(dim),
                            0.0);
  std::vector<double> rhs(static_cast<std::size_t>(dim), 0.0);
  for (int t = 0; t < w_slots; ++t) {
    for (int s = 0; s < w_slots; ++s) {
      const double factor = (t == s ? 1.0 : 0.0) + lambda;
      for (int i = 0; i < kF; ++i)
        for (int j = 0; j < kF; ++j)
          joint[static_cast<std::size_t>((t * kF + i) * dim + s * kF + j)] +=
              factor * gram[static_cast<std::size_t>(i * kF + j)];
    }
    for (int i = 0; i < kF; ++i) {
      joint[static_cast<std::size_t>((t * kF + i) * dim + t * kF + i)] +=
          config_.ridge;
      rhs[static_cast<std::size_t>(t * kF + i)] =
          xty[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] +
          lambda * xt_total[static_cast<std::size_t>(i)];
    }
  }
  const std::vector<double> solution = solve_linear(joint, rhs, dim);
  for (int t = 0; t < w_slots; ++t)
    weights_.emplace_back(solution.begin() + t * kF,
                          solution.begin() + (t + 1) * kF);
}

void Zoom2NetImputer::apply_cem(Window& w) const {
  const Int bw = limits_.bandwidth;
  const Int burst = limits_.burst_threshold();
  auto& fine = w.fine;
  const auto n = static_cast<Int>(fine.size());

  // Rule 1: clip to [0, BW].
  for (Int& v : fine) v = std::clamp<Int>(v, 0, bw);

  // Rule 2: rescale so the fine series sums to the coarse total (the coarse
  // total itself is an input and assumed within [0, n*BW]).
  const Int target = std::clamp<Int>(w.total, 0, n * bw);
  Int sum = 0;
  for (const Int v : fine) sum += v;
  Int diff = target - sum;
  // Greedy unit redistribution: always adjust the slot with the most room,
  // which preserves the regressor's shape as much as a one-pass repair can.
  while (diff != 0) {
    std::size_t pick = 0;
    if (diff > 0) {
      Int best_room = -1;
      for (std::size_t i = 0; i < fine.size(); ++i)
        if (bw - fine[i] > best_room) {
          best_room = bw - fine[i];
          pick = i;
        }
      if (best_room <= 0) break;  // saturated; unreachable for valid totals
      const Int step = std::min(diff, best_room);
      fine[pick] += step;
      diff -= step;
    } else {
      Int best_room = -1;
      for (std::size_t i = 0; i < fine.size(); ++i)
        if (fine[i] > best_room) {
          best_room = fine[i];
          pick = i;
        }
      if (best_room <= 0) break;
      const Int step = std::min(-diff, best_room);
      fine[pick] -= step;
      diff += step;
    }
  }

  // Rule 3: congestion implies a burst. One-pass fix-up: raise the current
  // peak slot to the burst threshold and take the surplus from the others.
  if (w.ecn > 0) {
    const auto peak_it = std::max_element(fine.begin(), fine.end());
    if (*peak_it < burst) {
      Int need = burst - *peak_it;
      *peak_it = burst;
      for (std::size_t i = 0; i < fine.size() && need > 0; ++i) {
        if (&fine[i] == &*peak_it) continue;
        const Int take = std::min(need, fine[i]);
        fine[i] -= take;
        need -= take;
      }
      // If the window's total is too small to sustain a burst, the one-pass
      // algorithm fails to find a joint fix (mirroring NetDiffusion's
      // failure mode the paper cites): roll back the raise partially.
      if (need > 0) *peak_it -= need;
    }
  }
}

Window Zoom2NetImputer::impute(const Window& coarse) const {
  Window out = coarse;
  out.fine.assign(static_cast<std::size_t>(limits_.window), 0);
  const std::vector<double> x = features(coarse);
  for (int t = 0; t < limits_.window; ++t) {
    double acc = 0.0;
    const auto& wt = weights_[static_cast<std::size_t>(t)];
    for (std::size_t i = 0; i < wt.size(); ++i) acc += wt[i] * x[i];
    out.fine[static_cast<std::size_t>(t)] =
        static_cast<Int>(std::llround(acc));
  }
  if (config_.enable_cem) apply_cem(out);
  return out;
}

}  // namespace lejit::baselines
