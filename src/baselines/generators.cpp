#include "baselines/generators.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/linalg.hpp"
#include "util/error.hpp"

namespace lejit::baselines {

using telemetry::Int;
using telemetry::Window;

namespace {

constexpr int kF = telemetry::kNumCoarse;

std::vector<std::vector<Int>> coarse_rows(std::span<const Window> train) {
  LEJIT_REQUIRE(!train.empty(), "generator fit requires training windows");
  std::vector<std::vector<Int>> rows;
  rows.reserve(train.size());
  for (const Window& w : train) rows.push_back(telemetry::coarse_values(w));
  return rows;
}

Window window_from_coarse(const std::vector<Int>& v,
                          const telemetry::Limits& limits) {
  LEJIT_ASSERT(static_cast<int>(v.size()) == kF, "coarse tuple size");
  Window w;
  w.total = v[0];
  w.ecn = v[1];
  w.rtx = v[2];
  w.conn = v[3];
  w.egress = v[4];
  w.fine.assign(static_cast<std::size_t>(limits.window), 0);
  return w;
}

Int clamp_field(double value, Int hi) {
  return std::clamp<Int>(static_cast<Int>(std::llround(value)), 0, hi);
}

}  // namespace

// --- NetShare*: Gaussian copula over empirical marginals ----------------------

GaussianCopulaGenerator::GaussianCopulaGenerator(
    std::span<const Window> train, const telemetry::Limits& limits)
    : limits_(limits) {
  const auto rows = coarse_rows(train);
  const auto n = rows.size();

  marginals_.assign(kF, {});
  for (int f = 0; f < kF; ++f) {
    auto& m = marginals_[static_cast<std::size_t>(f)];
    m.reserve(n);
    for (const auto& r : rows) m.push_back(r[static_cast<std::size_t>(f)]);
    std::sort(m.begin(), m.end());
  }

  // Normal scores of the ranks, then their correlation matrix.
  std::vector<std::vector<double>> z(
      kF, std::vector<double>(n, 0.0));
  for (int f = 0; f < kF; ++f) {
    // Average ranks for ties via stable sort of indices.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return rows[a][static_cast<std::size_t>(f)] <
                              rows[b][static_cast<std::size_t>(f)];
                     });
    for (std::size_t rank = 0; rank < n; ++rank) {
      const double u =
          (static_cast<double>(rank) + 0.5) / static_cast<double>(n);
      z[static_cast<std::size_t>(f)][order[rank]] = normal_inv(u);
    }
  }
  std::vector<double> corr(kF * kF, 0.0);
  for (int a = 0; a < kF; ++a)
    for (int b = 0; b < kF; ++b) {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        acc += z[static_cast<std::size_t>(a)][i] *
               z[static_cast<std::size_t>(b)][i];
      corr[static_cast<std::size_t>(a * kF + b)] =
          acc / static_cast<double>(n);
    }
  chol_ = cholesky(corr, kF);
}

Window GaussianCopulaGenerator::sample(util::Rng& rng) const {
  std::array<double, kF> indep{};
  for (double& v : indep) v = rng.normal();
  std::vector<Int> coarse(kF, 0);
  for (int f = 0; f < kF; ++f) {
    double zf = 0.0;
    for (int j = 0; j <= f; ++j)
      zf += chol_[static_cast<std::size_t>(f * kF + j)] *
            indep[static_cast<std::size_t>(j)];
    const double u = std::clamp(normal_cdf(zf), 1e-9, 1.0 - 1e-9);
    const auto& m = marginals_[static_cast<std::size_t>(f)];
    const auto idx = static_cast<std::size_t>(
        u * static_cast<double>(m.size() - 1) + 0.5);
    coarse[static_cast<std::size_t>(f)] = m[std::min(idx, m.size() - 1)];
  }
  return window_from_coarse(coarse, limits_);
}

// --- E-WGAN-GP*: jittered resampling --------------------------------------------

JitterResampleGenerator::JitterResampleGenerator(
    std::span<const Window> train, const telemetry::Limits& limits,
    double noise_frac)
    : limits_(limits), noise_frac_(noise_frac), rows_(coarse_rows(train)) {
  stddev_.assign(kF, 0.0);
  for (int f = 0; f < kF; ++f) {
    double mean = 0.0;
    for (const auto& r : rows_)
      mean += static_cast<double>(r[static_cast<std::size_t>(f)]);
    mean /= static_cast<double>(rows_.size());
    double var = 0.0;
    for (const auto& r : rows_) {
      const double d =
          static_cast<double>(r[static_cast<std::size_t>(f)]) - mean;
      var += d * d;
    }
    stddev_[static_cast<std::size_t>(f)] =
        std::sqrt(var / static_cast<double>(rows_.size()));
  }
}

Window JitterResampleGenerator::sample(util::Rng& rng) const {
  const auto& base = rows_[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<Int>(rows_.size()) - 1))];
  const std::vector<Int> ubs = telemetry::coarse_upper_bounds(limits_);
  std::vector<Int> coarse(kF, 0);
  for (int f = 0; f < kF; ++f) {
    const double noisy =
        static_cast<double>(base[static_cast<std::size_t>(f)]) +
        rng.normal(0.0, noise_frac_ * stddev_[static_cast<std::size_t>(f)] +
                            0.5);
    coarse[static_cast<std::size_t>(f)] =
        clamp_field(noisy, ubs[static_cast<std::size_t>(f)]);
  }
  return window_from_coarse(coarse, limits_);
}

// --- CTGAN*: per-field mode-specific normalization -------------------------------

ModeClusterGenerator::ModeClusterGenerator(std::span<const Window> train,
                                           const telemetry::Limits& limits,
                                           int modes)
    : limits_(limits) {
  LEJIT_REQUIRE(modes >= 1, "need at least one mode");
  const auto rows = coarse_rows(train);
  field_modes_.assign(kF, {});

  for (int f = 0; f < kF; ++f) {
    std::vector<double> xs;
    xs.reserve(rows.size());
    for (const auto& r : rows)
      xs.push_back(static_cast<double>(r[static_cast<std::size_t>(f)]));
    std::sort(xs.begin(), xs.end());

    // 1-D k-means, quantile-initialized, a few Lloyd iterations.
    const int k = std::min<int>(modes, static_cast<int>(xs.size()));
    std::vector<double> centers(static_cast<std::size_t>(k));
    for (int c = 0; c < k; ++c)
      centers[static_cast<std::size_t>(c)] =
          xs[static_cast<std::size_t>((xs.size() - 1) *
                                      (2 * c + 1) / (2 * k))];
    std::vector<int> assign(xs.size(), 0);
    for (int iter = 0; iter < 12; ++iter) {
      for (std::size_t i = 0; i < xs.size(); ++i) {
        int best = 0;
        for (int c = 1; c < k; ++c)
          if (std::abs(xs[i] - centers[static_cast<std::size_t>(c)]) <
              std::abs(xs[i] - centers[static_cast<std::size_t>(best)]))
            best = c;
        assign[i] = best;
      }
      for (int c = 0; c < k; ++c) {
        double sum = 0.0;
        int count = 0;
        for (std::size_t i = 0; i < xs.size(); ++i)
          if (assign[i] == c) {
            sum += xs[i];
            ++count;
          }
        if (count > 0) centers[static_cast<std::size_t>(c)] = sum / count;
      }
    }
    auto& fm = field_modes_[static_cast<std::size_t>(f)];
    for (int c = 0; c < k; ++c) {
      double sum = 0.0, sq = 0.0;
      int count = 0;
      for (std::size_t i = 0; i < xs.size(); ++i)
        if (assign[i] == c) {
          sum += xs[i];
          sq += xs[i] * xs[i];
          ++count;
        }
      if (count == 0) continue;
      const double mean = sum / count;
      const double var = std::max(0.0, sq / count - mean * mean);
      fm.push_back(Mode{static_cast<double>(count), mean,
                        std::sqrt(var) + 0.25});
    }
    LEJIT_ASSERT(!fm.empty(), "field with no modes");
  }
}

Window ModeClusterGenerator::sample(util::Rng& rng) const {
  const std::vector<Int> ubs = telemetry::coarse_upper_bounds(limits_);
  std::vector<Int> coarse(kF, 0);
  for (int f = 0; f < kF; ++f) {
    const auto& fm = field_modes_[static_cast<std::size_t>(f)];
    std::vector<double> weights;
    weights.reserve(fm.size());
    for (const Mode& m : fm) weights.push_back(m.weight);
    const Mode& mode = fm[rng.categorical(weights)];
    coarse[static_cast<std::size_t>(f)] =
        clamp_field(rng.normal(mode.mean, mode.stddev),
                    ubs[static_cast<std::size_t>(f)]);
  }
  return window_from_coarse(coarse, limits_);
}

// --- TVAE*: full-covariance Gaussian ----------------------------------------------

LatentGaussianGenerator::LatentGaussianGenerator(
    std::span<const Window> train, const telemetry::Limits& limits)
    : limits_(limits) {
  const auto rows = coarse_rows(train);
  const auto n = static_cast<double>(rows.size());
  mean_.assign(kF, 0.0);
  for (const auto& r : rows)
    for (int f = 0; f < kF; ++f)
      mean_[static_cast<std::size_t>(f)] +=
          static_cast<double>(r[static_cast<std::size_t>(f)]);
  for (double& m : mean_) m /= n;

  std::vector<double> cov(kF * kF, 0.0);
  for (const auto& r : rows)
    for (int a = 0; a < kF; ++a)
      for (int b = 0; b < kF; ++b)
        cov[static_cast<std::size_t>(a * kF + b)] +=
            (static_cast<double>(r[static_cast<std::size_t>(a)]) -
             mean_[static_cast<std::size_t>(a)]) *
            (static_cast<double>(r[static_cast<std::size_t>(b)]) -
             mean_[static_cast<std::size_t>(b)]);
  for (double& c : cov) c /= n;
  chol_ = cholesky(cov, kF);
}

Window LatentGaussianGenerator::sample(util::Rng& rng) const {
  std::array<double, kF> indep{};
  for (double& v : indep) v = rng.normal();
  const std::vector<Int> ubs = telemetry::coarse_upper_bounds(limits_);
  std::vector<Int> coarse(kF, 0);
  for (int f = 0; f < kF; ++f) {
    double v = mean_[static_cast<std::size_t>(f)];
    for (int j = 0; j <= f; ++j)
      v += chol_[static_cast<std::size_t>(f * kF + j)] *
           indep[static_cast<std::size_t>(j)];
    coarse[static_cast<std::size_t>(f)] =
        clamp_field(v, ubs[static_cast<std::size_t>(f)]);
  }
  return window_from_coarse(coarse, limits_);
}

// --- REaLTabFormer*: autoregressive row-text model --------------------------------

NgramRowGenerator::NgramRowGenerator(std::span<const Window> train,
                                     const telemetry::Limits& limits)
    : limits_(limits), tokenizer_(telemetry::row_alphabet()) {
  model_ = std::make_unique<lm::NgramModel>(tokenizer_.vocab_size(),
                                            lm::NgramConfig{.order = 6});
  for (const Window& w : train) {
    const std::vector<int> tokens =
        tokenizer_.encode(telemetry::window_to_coarse_row(w));
    model_->observe(tokens);
  }
  decoder_ = std::make_unique<core::GuidedDecoder>(
      *model_, tokenizer_, telemetry::coarse_row_layout(limits),
      rules::RuleSet{},
      core::DecoderConfig{.mode = core::GuidanceMode::kSyntax});
}

Window NgramRowGenerator::sample(util::Rng& rng) const {
  const core::DecodeResult r = decoder_->generate(rng);
  LEJIT_ASSERT(r.ok && r.window.has_value(),
               "grammar-constrained decode must parse");
  Window w = *r.window;
  w.fine.assign(static_cast<std::size_t>(limits_.window), 0);
  return w;
}

std::vector<std::unique_ptr<CoarseGenerator>> make_all_generators(
    std::span<const Window> train, const telemetry::Limits& limits) {
  std::vector<std::unique_ptr<CoarseGenerator>> out;
  out.push_back(std::make_unique<GaussianCopulaGenerator>(train, limits));
  out.push_back(std::make_unique<JitterResampleGenerator>(train, limits));
  out.push_back(std::make_unique<ModeClusterGenerator>(train, limits));
  out.push_back(std::make_unique<LatentGaussianGenerator>(train, limits));
  out.push_back(std::make_unique<NgramRowGenerator>(train, limits));
  return out;
}

}  // namespace lejit::baselines
