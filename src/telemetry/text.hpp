// Row text format: the bridge between telemetry windows and the char-level LM.
//
// A window serializes to one line,
//
//   T=480 E=12 R=3 C=45 G=180|48 96 30 41 20\n
//
// coarse fields first (Total, Ecn, Rtx, Conn, eGress), then '|' and the W
// fine-grained readings. The same format serves both tasks: telemetry
// imputation prompts the LM with everything up to and including '|'
// (conditional generation of the fine part), while data synthesis starts
// from the empty prompt (unconditional generation of a whole row).
//
// RowLayout is the machine-readable description of this syntax that LeJIT's
// decoder walks token by token: literal separator runs alternate with
// bounded unsigned integer fields.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/schema.hpp"

namespace lejit::telemetry {

// One numeric field slot in a row.
struct FieldSpec {
  std::string prefix;   // literal text emitted before the field's digits
  std::string name;     // SMT-facing variable name ("total", "I0", ...)
  Int max_value = 0;    // inclusive upper bound (drives digit-count limits)
  bool is_fine = false; // true for the W fine-grained slots
};

struct RowLayout {
  std::vector<FieldSpec> fields;
  std::string suffix;  // literal text terminating a row ("\n")

  int num_fields() const { return static_cast<int>(fields.size()); }
  // Index of the first fine field (== kNumCoarse for this schema).
  int first_fine_field() const;
};

// The canonical layout for this schema under `limits`.
RowLayout telemetry_row_layout(const Limits& limits);

// Coarse-only layout (no fine fields): the synthesis task's row format,
//   T=480 E=12 R=3 C=45 G=180\n
RowLayout coarse_row_layout(const Limits& limits);

// The exact character alphabet rows are built from (tokenizer input).
std::string row_alphabet();

// --- serialization ------------------------------------------------------------
std::string window_to_row(const Window& w);
// Coarse-only serialization (synthesis-task rows).
std::string window_to_coarse_row(const Window& w);
// Prompt for the imputation task: the coarse prefix up to and incl. '|'.
std::string imputation_prompt(const Window& w);
// Whole-dataset corpus: every window, one row per line.
std::string dataset_corpus(const Dataset& dataset);

// --- parsing -------------------------------------------------------------------
// Parse one row (trailing newline optional) into a window. Returns nullopt
// on any *syntax* deviation. Values are NOT range-checked — a generator may
// emit out-of-domain values and the rule checker must get to see them; use
// window_is_consistent / rules::check_violations for semantics.
std::optional<Window> parse_row(std::string_view row, const RowLayout& layout);
std::optional<Window> parse_row(std::string_view row, const Limits& limits);

// Parse every line of a corpus; malformed lines are skipped and counted.
struct ParsedCorpus {
  std::vector<Window> windows;
  std::size_t malformed = 0;
};
ParsedCorpus parse_corpus(std::string_view corpus, const Limits& limits);

}  // namespace lejit::telemetry
