#include "telemetry/schema.hpp"

#include <algorithm>

namespace lejit::telemetry {

std::vector<Int> coarse_upper_bounds(const Limits& limits) {
  return {limits.total_max(), limits.ecn_max, limits.rtx_max, limits.conn_max,
          limits.total_max()};
}

bool window_is_consistent(const Window& w, const Limits& limits) {
  if (static_cast<int>(w.fine.size()) != limits.window) return false;
  Int sum = 0;
  Int peak = 0;
  for (const Int v : w.fine) {
    if (v < 0 || v > limits.bandwidth) return false;
    sum += v;
    peak = std::max(peak, v);
  }
  if (sum != w.total) return false;
  if (w.ecn < 0 || w.ecn > limits.ecn_max) return false;
  if (w.rtx < 0 || w.rtx > limits.rtx_max) return false;
  if (w.conn < 1 || w.conn > limits.conn_max) return false;
  if (w.egress < 0 || w.egress > w.total) return false;
  // ECN marks appear exactly when a fine reading crosses the burst threshold.
  if ((w.ecn > 0) != (peak >= limits.burst_threshold())) return false;
  // Retransmits only occur near saturation.
  if (w.rtx > 0 && peak < limits.rtx_threshold()) return false;
  return true;
}

}  // namespace lejit::telemetry
