// Telemetry schema: the repository's stand-in for the Meta datacenter rack
// dataset (Ghabashneh et al., IMC '22) used by the paper.
//
// Each observation window holds W fine-grained (ms-level) ingress readings
// and five coarse-grained (window-level) counters derived from them. The
// derivations intentionally reproduce the structure the paper's evaluation
// depends on (see DESIGN.md §3): exact accounting ties (sum of fine equals
// the coarse total), burst-triggered congestion signals (ECN marks appear
// exactly when some fine reading crosses half the bandwidth), and
// loss/retransmit signals tied to near-saturation bursts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace lejit::telemetry {

using Int = std::int64_t;

// Structural constants of the synthetic fleet. Fixed at compile time so the
// rule miner, the LM text format, and the SMT variable domains always agree.
struct Limits {
  Int bandwidth = 96;     // per-ms ingress capacity (fine values are 0..BW)
  int window = 5;         // W: fine readings per coarse window
  Int ecn_max = 255;      // ECN-marked packet count ceiling
  Int rtx_max = 60;       // retransmitted packet count ceiling
  Int conn_max = 999;     // active connection ceiling
  Int burst_threshold() const { return bandwidth / 2; }
  Int rtx_threshold() const { return bandwidth * 4 / 5; }
  Int total_max() const { return bandwidth * window; }
};

// One coarse window with its underlying fine-grained series.
struct Window {
  std::vector<Int> fine;  // W ingress readings, each in [0, bandwidth]
  Int total = 0;          // sum of fine (exact accounting)
  Int ecn = 0;            // ECN-marked packets; > 0 iff a burst occurred
  Int rtx = 0;            // retransmits; > 0 only near saturation
  Int conn = 0;           // active connections (load-correlated)
  Int egress = 0;         // egress volume; never exceeds total ingress
};

// The coarse field names, in row order. Shared by the text format, the rule
// miner and the benchmark tables.
inline constexpr int kNumCoarse = 5;
inline const char* const kCoarseNames[kNumCoarse] = {"total", "ecn", "rtx",
                                                     "conn", "egress"};

// Coarse values of a window as an array in kCoarseNames order.
inline std::vector<Int> coarse_values(const Window& w) {
  return {w.total, w.ecn, w.rtx, w.conn, w.egress};
}

// Upper bound of each coarse field under `limits`, in kCoarseNames order.
std::vector<Int> coarse_upper_bounds(const Limits& limits);

// One rack's trace: a sequence of windows.
struct RackTrace {
  int rack_id = 0;
  std::vector<Window> windows;
};

struct Dataset {
  Limits limits;
  std::vector<RackTrace> racks;

  std::size_t total_windows() const {
    std::size_t n = 0;
    for (const auto& r : racks) n += r.windows.size();
    return n;
  }
};

// Validate the structural invariants of a window (used by tests and by the
// generator's own self-check).
bool window_is_consistent(const Window& w, const Limits& limits);

}  // namespace lejit::telemetry
