#include "telemetry/text.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace lejit::telemetry {

int RowLayout::first_fine_field() const {
  for (int i = 0; i < num_fields(); ++i)
    if (fields[static_cast<std::size_t>(i)].is_fine) return i;
  return num_fields();
}

RowLayout telemetry_row_layout(const Limits& limits) {
  RowLayout layout;
  const std::vector<Int> ubs = coarse_upper_bounds(limits);
  const char* prefixes[kNumCoarse] = {"T=", " E=", " R=", " C=", " G="};
  for (int i = 0; i < kNumCoarse; ++i) {
    layout.fields.push_back(FieldSpec{
        .prefix = prefixes[i],
        .name = kCoarseNames[i],
        .max_value = ubs[static_cast<std::size_t>(i)],
        .is_fine = false,
    });
  }
  for (int t = 0; t < limits.window; ++t) {
    layout.fields.push_back(FieldSpec{
        .prefix = (t == 0 ? "|" : " "),
        .name = "I" + std::to_string(t),
        .max_value = limits.bandwidth,
        .is_fine = true,
    });
  }
  layout.suffix = "\n";
  return layout;
}

RowLayout coarse_row_layout(const Limits& limits) {
  RowLayout layout = telemetry_row_layout(limits);
  std::erase_if(layout.fields, [](const FieldSpec& f) { return f.is_fine; });
  return layout;
}

std::string row_alphabet() { return "0123456789TERCG=| \n"; }

std::string window_to_row(const Window& w) {
  std::ostringstream os;
  os << "T=" << w.total << " E=" << w.ecn << " R=" << w.rtx << " C=" << w.conn
     << " G=" << w.egress << "|";
  for (std::size_t t = 0; t < w.fine.size(); ++t) {
    if (t > 0) os << " ";
    os << w.fine[t];
  }
  os << "\n";
  return os.str();
}

std::string window_to_coarse_row(const Window& w) {
  std::ostringstream os;
  os << "T=" << w.total << " E=" << w.ecn << " R=" << w.rtx << " C=" << w.conn
     << " G=" << w.egress << "\n";
  return os.str();
}

std::string imputation_prompt(const Window& w) {
  std::ostringstream os;
  os << "T=" << w.total << " E=" << w.ecn << " R=" << w.rtx << " C=" << w.conn
     << " G=" << w.egress << "|";
  return os.str();
}

std::string dataset_corpus(const Dataset& dataset) {
  std::string out;
  for (const auto& rack : dataset.racks)
    for (const auto& w : rack.windows) out += window_to_row(w);
  return out;
}

namespace {

// Consume an expected literal; returns false on mismatch.
bool eat(std::string_view& s, std::string_view literal) {
  if (!s.starts_with(literal)) return false;
  s.remove_prefix(literal.size());
  return true;
}

// Consume a run of digits as a non-negative integer.
std::optional<Int> eat_int(std::string_view& s) {
  std::size_t n = 0;
  while (n < s.size() && s[n] >= '0' && s[n] <= '9') ++n;
  if (n == 0) return std::nullopt;
  const auto v = util::parse_int(s.substr(0, n));
  s.remove_prefix(n);
  return v;
}

}  // namespace

std::optional<Window> parse_row(std::string_view row, const RowLayout& layout) {
  if (row.ends_with('\n')) row.remove_suffix(1);

  Window w;
  std::vector<Int> values;
  std::string_view rest = row;
  for (const FieldSpec& field : layout.fields) {
    if (!eat(rest, field.prefix)) return std::nullopt;
    const auto v = eat_int(rest);
    if (!v || *v < 0) return std::nullopt;
    values.push_back(*v);
  }
  if (!rest.empty()) return std::nullopt;

  w.total = values[0];
  w.ecn = values[1];
  w.rtx = values[2];
  w.conn = values[3];
  w.egress = values[4];
  w.fine.assign(values.begin() + kNumCoarse, values.end());
  return w;
}

std::optional<Window> parse_row(std::string_view row, const Limits& limits) {
  return parse_row(row, telemetry_row_layout(limits));
}

ParsedCorpus parse_corpus(std::string_view corpus, const Limits& limits) {
  ParsedCorpus out;
  for (const auto line : util::split(corpus, '\n')) {
    if (line.empty()) continue;
    if (auto w = parse_row(line, limits))
      out.windows.push_back(std::move(*w));
    else
      ++out.malformed;
  }
  return out;
}

}  // namespace lejit::telemetry
