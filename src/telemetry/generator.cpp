#include "telemetry/generator.hpp"

#include <algorithm>
#include <cmath>

namespace lejit::telemetry {

namespace {

Int clamp(Int v, Int lo, Int hi) { return std::max(lo, std::min(hi, v)); }

// Per-rack traffic personality.
struct RackProfile {
  double base_level;    // mean background ingress (fraction of bandwidth)
  double ar_coeff;      // AR(1) smoothness of the background
  double noise_scale;   // background innovation scale
  double burst_rate;    // per-window burst probability
  double conn_base;     // baseline connection count
};

RackProfile make_profile(util::Rng& rng, const GeneratorConfig& cfg) {
  RackProfile p;
  p.base_level = rng.uniform(0.10, 0.45);
  p.ar_coeff = rng.uniform(0.55, 0.9);
  p.noise_scale = rng.uniform(0.03, 0.10);
  p.burst_rate = cfg.burst_rate * rng.uniform(0.5, 1.6);
  p.conn_base = rng.uniform(40.0, 400.0);
  return p;
}

}  // namespace

Dataset generate_dataset(const GeneratorConfig& config) {
  LEJIT_REQUIRE(config.num_racks > 0 && config.windows_per_rack > 0,
                "fleet dimensions must be positive");
  const Limits& lim = config.limits;
  const double bw = static_cast<double>(lim.bandwidth);

  Dataset ds;
  ds.limits = lim;
  util::Rng master(config.seed);

  for (int rack = 0; rack < config.num_racks; ++rack) {
    util::Rng rng = master.fork(static_cast<std::uint64_t>(rack) + 1);
    const RackProfile profile = make_profile(rng, config);

    RackTrace trace;
    trace.rack_id = rack;
    trace.windows.reserve(static_cast<std::size_t>(config.windows_per_rack));

    double background = profile.base_level * bw;  // AR(1) state, in bytes/ms
    int burst_remaining = 0;                      // slots left in active burst
    double burst_height = 0.0;

    for (int wi = 0; wi < config.windows_per_rack; ++wi) {
      Window w;
      w.fine.resize(static_cast<std::size_t>(lim.window));

      // Possibly start a burst at a random slot of this window.
      int burst_start = -1;
      if (burst_remaining == 0 && rng.bernoulli(profile.burst_rate)) {
        burst_start =
            static_cast<int>(rng.uniform_int(0, lim.window - 1));
        burst_remaining = 1 + static_cast<int>(rng.uniform_int(0, 2));
        // Heavy-tailed burst height, capped at line rate.
        burst_height =
            std::min(bw, (bw / 2.0) * rng.pareto(1.0, config.pareto_shape));
      }

      for (int t = 0; t < lim.window; ++t) {
        // Smooth background.
        background = profile.ar_coeff * background +
                     (1.0 - profile.ar_coeff) * profile.base_level * bw +
                     rng.normal(0.0, profile.noise_scale * bw);
        background = std::clamp(background, 0.0, 0.6 * bw);

        double level = background;
        const bool bursting =
            (burst_start >= 0 && t >= burst_start && burst_remaining > 0);
        if (bursting) {
          level = std::max(level, burst_height + rng.normal(0.0, 2.0));
          --burst_remaining;
        }
        w.fine[static_cast<std::size_t>(t)] =
            clamp(static_cast<Int>(std::llround(level)), 0, lim.bandwidth);
      }
      // A burst can spill into the next window only as a fresh one here.
      if (burst_start < 0) burst_remaining = 0;

      Int peak = 0;
      for (const Int v : w.fine) {
        w.total += v;
        peak = std::max(peak, v);
      }

      // Coarse counters derived from the fine series (schema invariants).
      if (peak >= lim.burst_threshold()) {
        const double overshoot =
            static_cast<double>(peak - lim.burst_threshold());
        w.ecn = clamp(
            1 + static_cast<Int>(std::llround(
                    overshoot * 4.0 * std::abs(rng.uniform(0.6, 1.4)))),
            1, lim.ecn_max);
      }
      if (peak >= lim.rtx_threshold()) {
        const double excess = static_cast<double>(peak - lim.rtx_threshold());
        w.rtx = clamp(static_cast<Int>(std::llround(
                          excess * rng.uniform(0.5, 2.0))),
                      0, lim.rtx_max);
      }
      w.conn = clamp(
          static_cast<Int>(std::llround(
              profile.conn_base +
              static_cast<double>(w.total) * rng.uniform(0.3, 0.7))),
          1, lim.conn_max);
      w.egress = clamp(
          static_cast<Int>(std::llround(static_cast<double>(w.total) *
                                        rng.uniform(0.55, 1.0))),
          0, w.total);

      LEJIT_ASSERT(window_is_consistent(w, lim),
                   "generator produced an inconsistent window");
      trace.windows.push_back(std::move(w));
    }
    ds.racks.push_back(std::move(trace));
  }
  return ds;
}

Split split_by_rack(const Dataset& dataset, int num_test_racks,
                    std::uint64_t seed) {
  LEJIT_REQUIRE(num_test_racks > 0 &&
                    num_test_racks < static_cast<int>(dataset.racks.size()),
                "test split must keep at least one rack on each side");
  std::vector<std::size_t> order(dataset.racks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  util::Rng rng(seed);
  rng.shuffle(order);

  Split split;
  split.train.limits = dataset.limits;
  split.test.limits = dataset.limits;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const RackTrace& rack = dataset.racks[order[i]];
    if (i < static_cast<std::size_t>(num_test_racks))
      split.test.racks.push_back(rack);
    else
      split.train.racks.push_back(rack);
  }
  return split;
}

std::vector<Window> all_windows(const Dataset& dataset) {
  std::vector<Window> out;
  out.reserve(dataset.total_windows());
  for (const auto& rack : dataset.racks)
    out.insert(out.end(), rack.windows.begin(), rack.windows.end());
  return out;
}

}  // namespace lejit::telemetry
