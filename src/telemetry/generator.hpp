// Synthetic datacenter workload generator.
//
// Reproduces, at laptop scale, the statistical features of the Meta rack
// traces the paper evaluates on: racks with heterogeneous base load, smooth
// AR(1) background traffic, and heavy-tailed on/off bursts that saturate the
// link for a few milliseconds (the phenomenon Zoom2Net's "burst analysis"
// downstream task studies). Coarse counters are derived from the fine series
// per the schema's invariants, so cross-granularity rules are minable and an
// imputer has real signal to learn.
#pragma once

#include "telemetry/schema.hpp"
#include "util/rng.hpp"

namespace lejit::telemetry {

struct GeneratorConfig {
  Limits limits{};
  int num_racks = 90;           // paper: 80 train + 10 test racks
  int windows_per_rack = 120;
  double burst_rate = 0.18;     // per-window probability a burst begins
  double pareto_shape = 1.6;    // burst height tail index
  std::uint64_t seed = 20250705;
};

// Generate the full synthetic fleet. Every produced window satisfies
// window_is_consistent().
Dataset generate_dataset(const GeneratorConfig& config);

// Split by rack, matching the paper's setup (§4: 80 train / 10 test racks).
struct Split {
  Dataset train;
  Dataset test;
};
Split split_by_rack(const Dataset& dataset, int num_test_racks,
                    std::uint64_t seed);

// Flatten a dataset into a window list (the unit most evaluations work on).
std::vector<Window> all_windows(const Dataset& dataset);

}  // namespace lejit::telemetry
