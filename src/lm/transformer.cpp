#include "lm/transformer.hpp"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numbers>
#include <thread>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"

namespace lejit::lm {

namespace {

constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)

float gelu(float x) {
  const float t = kGeluC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(t));
}

float gelu_grad(float x) {
  const float t = kGeluC * (x + 0.044715f * x * x * x);
  const float th = std::tanh(t);
  const float sech2 = 1.0f - th * th;
  return 0.5f * (1.0f + th) +
         0.5f * x * sech2 * kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
}

// One trainable tensor with its gradient and AdamW state.
struct Param {
  Mat w, g, m, v;
  bool decay = true;

  void init(int rows, int cols, bool use_decay) {
    w = Mat(rows, cols);
    g = Mat(rows, cols);
    m = Mat(rows, cols);
    v = Mat(rows, cols);
    decay = use_decay;
  }
};

// LayerNorm forward over rows of x; caches xhat and rstd for backward.
struct LnCache {
  Mat xhat;
  std::vector<float> rstd;
};

void ln_forward(const Mat& x, const Param& gamma, const Param& beta, Mat& out,
                LnCache& cache) {
  const int s = x.rows, d = x.cols;
  if (out.rows != s || out.cols != d) out = Mat(s, d);
  cache.xhat = Mat(s, d);
  cache.rstd.assign(static_cast<std::size_t>(s), 0.0f);
  for (int t = 0; t < s; ++t) {
    const float* xt = x.row(t);
    float mean = 0.0f;
    for (int i = 0; i < d; ++i) mean += xt[i];
    mean /= static_cast<float>(d);
    float var = 0.0f;
    for (int i = 0; i < d; ++i) {
      const float c = xt[i] - mean;
      var += c * c;
    }
    var /= static_cast<float>(d);
    const float rstd = 1.0f / std::sqrt(var + 1e-5f);
    cache.rstd[static_cast<std::size_t>(t)] = rstd;
    float* xh = cache.xhat.row(t);
    float* ot = out.row(t);
    for (int i = 0; i < d; ++i) {
      xh[i] = (xt[i] - mean) * rstd;
      ot[i] = xh[i] * gamma.w.data[static_cast<std::size_t>(i)] +
              beta.w.data[static_cast<std::size_t>(i)];
    }
  }
}

// dx += backward of LayerNorm given dout; accumulates dgamma/dbeta.
void ln_backward(const Mat& dout, const LnCache& cache, Param& gamma,
                 Param& beta, Mat& dx) {
  const int s = dout.rows, d = dout.cols;
  for (int t = 0; t < s; ++t) {
    const float* dot_ = dout.row(t);
    const float* xh = cache.xhat.row(t);
    const float rstd = cache.rstd[static_cast<std::size_t>(t)];
    float sum_dxhat = 0.0f, sum_dxhat_xhat = 0.0f;
    for (int i = 0; i < d; ++i) {
      const float dxh = dot_[i] * gamma.w.data[static_cast<std::size_t>(i)];
      sum_dxhat += dxh;
      sum_dxhat_xhat += dxh * xh[i];
      gamma.g.data[static_cast<std::size_t>(i)] += dot_[i] * xh[i];
      beta.g.data[static_cast<std::size_t>(i)] += dot_[i];
    }
    const float inv_d = 1.0f / static_cast<float>(d);
    float* dxt = dx.row(t);
    for (int i = 0; i < d; ++i) {
      const float dxh = dot_[i] * gamma.w.data[static_cast<std::size_t>(i)];
      dxt[i] += rstd * (dxh - inv_d * sum_dxhat - xh[i] * inv_d * sum_dxhat_xhat);
    }
  }
}

void add_bias(Mat& x, const Param& b) {
  for (int t = 0; t < x.rows; ++t) {
    float* xt = x.row(t);
    for (int i = 0; i < x.cols; ++i)
      xt[i] += b.w.data[static_cast<std::size_t>(i)];
  }
}

void bias_grad(const Mat& dout, Param& b) {
  for (int t = 0; t < dout.rows; ++t) {
    const float* dt = dout.row(t);
    for (int i = 0; i < dout.cols; ++i)
      b.g.data[static_cast<std::size_t>(i)] += dt[i];
  }
}

struct LayerParams {
  Param ln1_g, ln1_b, w_qkv, b_qkv, w_o, b_o;
  Param ln2_g, ln2_b, w_fc1, b_fc1, w_fc2, b_fc2;
};

// Activations cached during forward for one sequence.
struct LayerCache {
  Mat x_in;      // layer input
  LnCache ln1;
  Mat ln1_out;
  Mat qkv;
  std::vector<Mat> att;  // per head, S×S row-softmaxed attention
  Mat ctx;
  Mat x_mid;     // after attention residual
  LnCache ln2;
  Mat ln2_out;
  Mat fc1_pre;   // before GELU
  Mat fc1_act;
};

struct ForwardCache {
  std::vector<int> ids;  // START-prefixed input ids
  Mat x0;
  std::vector<LayerCache> layers;
  LnCache lnf;
  Mat lnf_out;
  Mat logits;
};

}  // namespace

struct Transformer::Impl {
  TransformerConfig cfg;
  Param tok_emb;  // (vocab+1, d): row vocab is the internal START token
  Param pos_emb;  // (max_seq, d)
  std::vector<LayerParams> layers;
  Param lnf_g, lnf_b, w_out, b_out;
  std::int64_t adam_t = 0;

  // KV cache backing the plain logits() path. Mutable because it is
  // semantically invisible: logits match a cold forward pass exactly.
  mutable KvCache cache;
  // Reentrancy guard for that internal cache: 0 when unowned, otherwise a
  // nonzero fingerprint of the thread currently inside logits().
  mutable std::atomic<std::uint64_t> logits_owner{0};

  void invalidate_cache() const { cache.clear(); }

  // Lazily size a cache for this model and reject caches shaped for another.
  void ensure_cache_shape(KvCache& kv) const;

  // Incremental forward: reuse cached K/V for the common prefix of `ids`,
  // process only the new suffix, return logits at the last position.
  std::vector<float> decode_logits(const std::vector<int>& ids,
                                   KvCache& kv) const;

  // Batched incremental forward over independent (ids, cache) sessions;
  // bit-identical per session to decode_logits (see batch_vec_matmul).
  std::vector<std::vector<float>> decode_logits_batch(
      std::span<const std::vector<int>> ids_list,
      std::span<KvCache* const> caches) const;

  std::vector<Param*> all_params() {
    std::vector<Param*> ps{&tok_emb, &pos_emb, &lnf_g, &lnf_b, &w_out, &b_out};
    for (auto& l : layers) {
      for (Param* p : {&l.ln1_g, &l.ln1_b, &l.w_qkv, &l.b_qkv, &l.w_o, &l.b_o,
                       &l.ln2_g, &l.ln2_b, &l.w_fc1, &l.b_fc1, &l.w_fc2,
                       &l.b_fc2})
        ps.push_back(p);
    }
    return ps;
  }

  void init(util::Rng& rng) {
    const int d = cfg.d_model;
    tok_emb.init(cfg.vocab_size + 1, d, true);
    tok_emb.w.init_normal(rng, 0.02f);
    pos_emb.init(cfg.max_seq, d, true);
    pos_emb.w.init_normal(rng, 0.02f);
    layers.resize(static_cast<std::size_t>(cfg.n_layers));
    const float resid_scale =
        0.02f / std::sqrt(2.0f * static_cast<float>(cfg.n_layers));
    for (auto& l : layers) {
      l.ln1_g.init(1, d, false);
      std::fill(l.ln1_g.w.data.begin(), l.ln1_g.w.data.end(), 1.0f);
      l.ln1_b.init(1, d, false);
      l.w_qkv.init(d, 3 * d, true);
      l.w_qkv.w.init_normal(rng, 0.02f);
      l.b_qkv.init(1, 3 * d, false);
      l.w_o.init(d, d, true);
      l.w_o.w.init_normal(rng, resid_scale);
      l.b_o.init(1, d, false);
      l.ln2_g.init(1, d, false);
      std::fill(l.ln2_g.w.data.begin(), l.ln2_g.w.data.end(), 1.0f);
      l.ln2_b.init(1, d, false);
      l.w_fc1.init(d, cfg.d_ff, true);
      l.w_fc1.w.init_normal(rng, 0.02f);
      l.b_fc1.init(1, cfg.d_ff, false);
      l.w_fc2.init(cfg.d_ff, d, true);
      l.w_fc2.w.init_normal(rng, resid_scale);
      l.b_fc2.init(1, d, false);
    }
    lnf_g.init(1, d, false);
    std::fill(lnf_g.w.data.begin(), lnf_g.w.data.end(), 1.0f);
    lnf_b.init(1, d, false);
    w_out.init(d, cfg.vocab_size, true);
    w_out.w.init_normal(rng, 0.02f);
    b_out.init(1, cfg.vocab_size, false);
  }

  // Forward pass over START-prefixed ids; fills `fc`.
  void forward(const std::vector<int>& ids, ForwardCache& fc) const {
    const int s = static_cast<int>(ids.size());
    const int d = cfg.d_model;
    const int nh = cfg.n_heads;
    const int dh = d / nh;
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

    fc.ids = ids;
    fc.x0 = Mat(s, d);
    for (int t = 0; t < s; ++t) {
      const float* e =
          tok_emb.w.row(ids[static_cast<std::size_t>(t)]);
      const float* p = pos_emb.w.row(t);
      float* x = fc.x0.row(t);
      for (int i = 0; i < d; ++i) x[i] = e[i] + p[i];
    }

    fc.layers.assign(static_cast<std::size_t>(cfg.n_layers), LayerCache{});
    Mat x = fc.x0;
    Mat tmp;
    for (int li = 0; li < cfg.n_layers; ++li) {
      const LayerParams& lp = layers[static_cast<std::size_t>(li)];
      LayerCache& lc = fc.layers[static_cast<std::size_t>(li)];
      lc.x_in = x;

      ln_forward(x, lp.ln1_g, lp.ln1_b, lc.ln1_out, lc.ln1);
      matmul(lc.ln1_out, lp.w_qkv.w, lc.qkv);
      add_bias(lc.qkv, lp.b_qkv);

      lc.att.assign(static_cast<std::size_t>(nh), Mat(s, s));
      lc.ctx = Mat(s, d);
      for (int h = 0; h < nh; ++h) {
        Mat& att = lc.att[static_cast<std::size_t>(h)];
        const int qo = h * dh, ko = d + h * dh, vo = 2 * d + h * dh;
        for (int t = 0; t < s; ++t) {
          const float* qt = lc.qkv.row(t) + qo;
          float* at = att.row(t);
          float maxv = -1e30f;
          for (int u = 0; u <= t; ++u) {
            const float* ku = lc.qkv.row(u) + ko;
            float acc = 0.0f;
            for (int i = 0; i < dh; ++i) acc += qt[i] * ku[i];
            at[u] = acc * scale;
            maxv = std::max(maxv, at[u]);
          }
          float total = 0.0f;
          for (int u = 0; u <= t; ++u) {
            at[u] = std::exp(at[u] - maxv);
            total += at[u];
          }
          const float inv = 1.0f / total;
          for (int u = 0; u <= t; ++u) at[u] *= inv;
          // Weighted sum of values.
          float* ct = lc.ctx.row(t) + qo;
          for (int u = 0; u <= t; ++u) {
            const float a = at[u];
            const float* vu = lc.qkv.row(u) + vo;
            for (int i = 0; i < dh; ++i) ct[i] += a * vu[i];
          }
        }
      }

      matmul(lc.ctx, lp.w_o.w, tmp);
      add_bias(tmp, lp.b_o);
      lc.x_mid = Mat(s, d);
      for (std::size_t i = 0; i < lc.x_mid.data.size(); ++i)
        lc.x_mid.data[i] = x.data[i] + tmp.data[i];

      ln_forward(lc.x_mid, lp.ln2_g, lp.ln2_b, lc.ln2_out, lc.ln2);
      matmul(lc.ln2_out, lp.w_fc1.w, lc.fc1_pre);
      add_bias(lc.fc1_pre, lp.b_fc1);
      lc.fc1_act = Mat(s, cfg.d_ff);
      for (std::size_t i = 0; i < lc.fc1_act.data.size(); ++i)
        lc.fc1_act.data[i] = gelu(lc.fc1_pre.data[i]);
      matmul(lc.fc1_act, lp.w_fc2.w, tmp);
      add_bias(tmp, lp.b_fc2);
      x = Mat(s, d);
      for (std::size_t i = 0; i < x.data.size(); ++i)
        x.data[i] = lc.x_mid.data[i] + tmp.data[i];
    }

    ln_forward(x, lnf_g, lnf_b, fc.lnf_out, fc.lnf);
    matmul(fc.lnf_out, w_out.w, fc.logits);
    add_bias(fc.logits, b_out);
  }

  // Cross-entropy over all positions; fills dlogits (same shape as logits).
  float loss_and_dlogits(const ForwardCache& fc,
                         const std::vector<int>& targets, Mat& dlogits) const {
    const int s = fc.logits.rows;
    const int v = cfg.vocab_size;
    LEJIT_ASSERT(static_cast<int>(targets.size()) == s,
                 "targets/positions mismatch");
    dlogits = Mat(s, v);
    double loss = 0.0;
    const float inv_s = 1.0f / static_cast<float>(s);
    for (int t = 0; t < s; ++t) {
      const float* lt = fc.logits.row(t);
      float maxv = -1e30f;
      for (int i = 0; i < v; ++i) maxv = std::max(maxv, lt[i]);
      double total = 0.0;
      for (int i = 0; i < v; ++i) total += std::exp(static_cast<double>(lt[i] - maxv));
      const int y = targets[static_cast<std::size_t>(t)];
      loss += -(static_cast<double>(lt[y] - maxv) - std::log(total));
      float* dt = dlogits.row(t);
      for (int i = 0; i < v; ++i) {
        const float p = static_cast<float>(
            std::exp(static_cast<double>(lt[i] - maxv)) / total);
        dt[i] = (p - (i == y ? 1.0f : 0.0f)) * inv_s;
      }
    }
    return static_cast<float>(loss / s);
  }

  void backward(const ForwardCache& fc, const Mat& dlogits) {
    const int s = fc.logits.rows;
    const int d = cfg.d_model;
    const int nh = cfg.n_heads;
    const int dh = d / nh;
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

    // Output head.
    Mat d_lnf_out;
    matmul_tB(dlogits, w_out.w, d_lnf_out);
    matmul_tA_accum(fc.lnf_out, dlogits, w_out.g);
    bias_grad(dlogits, b_out);

    Mat dx(s, d);
    ln_backward(d_lnf_out, fc.lnf, lnf_g, lnf_b, dx);

    for (int li = cfg.n_layers - 1; li >= 0; --li) {
      LayerParams& lp = layers[static_cast<std::size_t>(li)];
      const LayerCache& lc = fc.layers[static_cast<std::size_t>(li)];

      // MLP branch: dx is gradient at the layer output (x_mid + mlp_out).
      Mat& d_mlp_out = dx;  // alias: same gradient flows into the branch
      Mat d_fc1_act;
      matmul_tB(d_mlp_out, lp.w_fc2.w, d_fc1_act);
      matmul_tA_accum(lc.fc1_act, d_mlp_out, lp.w_fc2.g);
      bias_grad(d_mlp_out, lp.b_fc2);
      for (std::size_t i = 0; i < d_fc1_act.data.size(); ++i)
        d_fc1_act.data[i] *= gelu_grad(lc.fc1_pre.data[i]);
      Mat d_ln2_out;
      matmul_tB(d_fc1_act, lp.w_fc1.w, d_ln2_out);
      matmul_tA_accum(lc.ln2_out, d_fc1_act, lp.w_fc1.g);
      bias_grad(d_fc1_act, lp.b_fc1);

      Mat d_x_mid = dx;  // residual path
      ln_backward(d_ln2_out, lc.ln2, lp.ln2_g, lp.ln2_b, d_x_mid);

      // Attention branch: d_x_mid is gradient at (x_in + attn_out).
      Mat d_ctx;
      matmul_tB(d_x_mid, lp.w_o.w, d_ctx);
      matmul_tA_accum(lc.ctx, d_x_mid, lp.w_o.g);
      bias_grad(d_x_mid, lp.b_o);

      Mat d_qkv(s, 3 * d);
      for (int h = 0; h < nh; ++h) {
        const Mat& att = lc.att[static_cast<std::size_t>(h)];
        const int qo = h * dh, ko = d + h * dh, vo = 2 * d + h * dh;
        // datt[t,u] = dctx_h[t]·V_h[u];   dV_h[u] += att[t,u]·dctx_h[t]
        Mat datt(s, s);
        for (int t = 0; t < s; ++t) {
          const float* dct = d_ctx.row(t) + qo;
          float* dat = datt.row(t);
          for (int u = 0; u <= t; ++u) {
            const float* vu = lc.qkv.row(u) + vo;
            float acc = 0.0f;
            for (int i = 0; i < dh; ++i) acc += dct[i] * vu[i];
            dat[u] = acc;
            float* dvu = d_qkv.row(u) + vo;
            const float a = att.at(t, u);
            for (int i = 0; i < dh; ++i) dvu[i] += a * dct[i];
          }
        }
        // Softmax backward per row, then into Q and K.
        for (int t = 0; t < s; ++t) {
          const float* at = att.row(t);
          const float* dat = datt.row(t);
          float dot = 0.0f;
          for (int u = 0; u <= t; ++u) dot += at[u] * dat[u];
          const float* qt = lc.qkv.row(t) + qo;
          float* dqt = d_qkv.row(t) + qo;
          for (int u = 0; u <= t; ++u) {
            const float ds = at[u] * (dat[u] - dot) * scale;
            if (ds == 0.0f) continue;
            const float* ku = lc.qkv.row(u) + ko;
            float* dku = d_qkv.row(u) + ko;
            for (int i = 0; i < dh; ++i) {
              dqt[i] += ds * ku[i];
              dku[i] += ds * qt[i];
            }
          }
        }
      }

      Mat d_ln1_out;
      matmul_tB(d_qkv, lp.w_qkv.w, d_ln1_out);
      matmul_tA_accum(lc.ln1_out, d_qkv, lp.w_qkv.g);
      bias_grad(d_qkv, lp.b_qkv);

      Mat d_x_in = d_x_mid;  // residual path
      ln_backward(d_ln1_out, lc.ln1, lp.ln1_g, lp.ln1_b, d_x_in);
      dx = std::move(d_x_in);
    }

    // Embeddings.
    for (int t = 0; t < s; ++t) {
      const float* dxt = dx.row(t);
      float* de = tok_emb.g.row(fc.ids[static_cast<std::size_t>(t)]);
      float* dp = pos_emb.g.row(t);
      for (int i = 0; i < d; ++i) {
        de[i] += dxt[i];
        dp[i] += dxt[i];
      }
    }
  }

  void adam_step(const AdamConfig& a) {
    ++adam_t;
    const auto params = all_params();

    if (a.grad_clip > 0.0f) {
      double norm_sq = 0.0;
      for (const Param* p : params)
        for (const float g : p->g.data) norm_sq += static_cast<double>(g) * g;
      const double norm = std::sqrt(norm_sq);
      if (norm > a.grad_clip) {
        const float scale = static_cast<float>(a.grad_clip / norm);
        for (Param* p : params)
          for (float& g : p->g.data) g *= scale;
      }
    }

    const float bc1 =
        1.0f - std::pow(a.beta1, static_cast<float>(adam_t));
    const float bc2 =
        1.0f - std::pow(a.beta2, static_cast<float>(adam_t));
    for (Param* p : params) {
      for (std::size_t i = 0; i < p->w.data.size(); ++i) {
        const float g = p->g.data[i];
        p->m.data[i] = a.beta1 * p->m.data[i] + (1.0f - a.beta1) * g;
        p->v.data[i] = a.beta2 * p->v.data[i] + (1.0f - a.beta2) * g * g;
        const float mhat = p->m.data[i] / bc1;
        const float vhat = p->v.data[i] / bc2;
        float update = mhat / (std::sqrt(vhat) + a.eps);
        if (p->decay) update += a.weight_decay * p->w.data[i];
        p->w.data[i] -= a.lr * update;
      }
    }
  }

  void zero_grads() {
    for (Param* p : all_params()) p->g.zero();
  }
};

namespace {

// LayerNorm of one d-vector.
void ln_vec(const float* x, const Param& gamma, const Param& beta, int d,
            float* out) {
  float mean = 0.0f;
  for (int i = 0; i < d; ++i) mean += x[i];
  mean /= static_cast<float>(d);
  float var = 0.0f;
  for (int i = 0; i < d; ++i) {
    const float c = x[i] - mean;
    var += c * c;
  }
  const float rstd = 1.0f / std::sqrt(var / static_cast<float>(d) + 1e-5f);
  for (int i = 0; i < d; ++i)
    out[i] = (x[i] - mean) * rstd * gamma.w.data[static_cast<std::size_t>(i)] +
             beta.w.data[static_cast<std::size_t>(i)];
}

// out = vec(1×m) · W(m×n) + b
void vec_matmul(const float* vec, const Mat& w, const Param& b, int m, int n,
                float* out) {
  for (int j = 0; j < n; ++j) out[j] = b.w.data[static_cast<std::size_t>(j)];
  for (int i = 0; i < m; ++i) {
    const float vi = vec[i];
    if (vi == 0.0f) continue;
    const float* wr = w.row(i);
    for (int j = 0; j < n; ++j) out[j] += vi * wr[j];
  }
}

// Batched vec_matmul: out[s] = in[s](1×m) · W(m×n) + b for every session s,
// with ONE sweep over W serving all sessions (the batched-forward win: the
// weight row loaded for position i is reused across the whole batch instead
// of being re-streamed per row). For each session the per-element float
// operations — bias first, ascending-i accumulation, the vi == 0 skip —
// happen in exactly the order vec_matmul uses, so each out[s] is
// bit-identical to vec_matmul(in[s], ...). That identity is what lets the
// serve runtime promise batched == sequential decoding.
void batch_vec_matmul(std::span<const float* const> in, const Mat& w,
                      const Param& b, int m, int n,
                      std::span<float* const> out) {
  const std::size_t ns = in.size();
  for (std::size_t s = 0; s < ns; ++s)
    for (int j = 0; j < n; ++j)
      out[s][j] = b.w.data[static_cast<std::size_t>(j)];
  for (int i = 0; i < m; ++i) {
    const float* wr = w.row(i);
    for (std::size_t s = 0; s < ns; ++s) {
      const float vi = in[s][i];
      if (vi == 0.0f) continue;
      float* os = out[s];
      for (int j = 0; j < n; ++j) os[j] += vi * wr[j];
    }
  }
}

// Longest common prefix between the cache and `ids`, with the last token
// always reprocessed so the query position's residual stream is available.
// Rebinds the cache to `ids` and returns the number of reused positions.
std::size_t kv_common_prefix(KvCache& kv, const std::vector<int>& ids) {
  std::size_t common = 0;
  while (common < kv.ids.size() && common < ids.size() &&
         kv.ids[common] == ids[common])
    ++common;
  if (common == ids.size()) --common;
  kv.ids.assign(ids.begin(), ids.end());
  return common;
}

// lm.kv.* efficiency counters: `reused` positions served from the cache and
// `recomputed` positions paid in full. Below the context window the ratio is
// ~ctx:1 per step; once the sliding window engages, reuse collapses to the
// START token alone and every step reprocesses the remaining max_seq-1
// window positions (see Transformer::logits docs).
void record_kv_counters(std::int64_t reused, std::int64_t recomputed) {
  if (!obs::metrics_enabled()) return;
  auto& registry = obs::MetricsRegistry::instance();
  static obs::Counter& c_reused = registry.counter("lm.kv.reused_tokens");
  static obs::Counter& c_recomputed =
      registry.counter("lm.kv.recomputed_tokens");
  c_reused.add(reused);
  c_recomputed.add(recomputed);
}

// Nonzero per-thread fingerprint for the logits() reentrancy guard.
std::uint64_t thread_fingerprint() noexcept {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1u;
}

// Owns the internal-cache critical section. Overlapping entry from a second
// thread is a programming error that would silently corrupt the KV cache
// (and with it, decoded text), so it aborts loudly instead — a release-mode
// assertion cheap enough (two uncontended atomics per forward) to always be
// on.
class ReentrancyGuard {
 public:
  explicit ReentrancyGuard(std::atomic<std::uint64_t>& owner) : owner_(owner) {
    std::uint64_t expected = 0;
    if (!owner_.compare_exchange_strong(expected, thread_fingerprint(),
                                        std::memory_order_acquire)) {
      std::fprintf(
          stderr,
          "lejit fatal: Transformer::logits() entered concurrently from two "
          "threads; the internal KV cache is not thread-safe. Give each "
          "thread its own lm::TransformerSession (or KvCache overload) "
          "instead of sharing one model instance.\n");
      std::abort();
    }
  }
  ~ReentrancyGuard() { owner_.store(0, std::memory_order_release); }

  ReentrancyGuard(const ReentrancyGuard&) = delete;
  ReentrancyGuard& operator=(const ReentrancyGuard&) = delete;

 private:
  std::atomic<std::uint64_t>& owner_;
};

}  // namespace

void Transformer::Impl::ensure_cache_shape(KvCache& kv) const {
  const int d = cfg.d_model;
  if (kv.k.empty()) {
    kv.k.assign(static_cast<std::size_t>(cfg.n_layers), Mat(cfg.max_seq, d));
    kv.v.assign(static_cast<std::size_t>(cfg.n_layers), Mat(cfg.max_seq, d));
    return;
  }
  LEJIT_REQUIRE(kv.k.size() == static_cast<std::size_t>(cfg.n_layers) &&
                    kv.k[0].rows == cfg.max_seq && kv.k[0].cols == d,
                "KvCache was sized for a different model");
}

std::vector<float> Transformer::Impl::decode_logits(const std::vector<int>& ids,
                                                    KvCache& kv) const {
  const int d = cfg.d_model;
  const int nh = cfg.n_heads;
  const int dh = d / nh;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  ensure_cache_shape(kv);

  // Longest common prefix with the cached context; always reprocess the last
  // token so the residual stream for the query position is available.
  const std::size_t common = kv_common_prefix(kv, ids);
  record_kv_counters(static_cast<std::int64_t>(common),
                     static_cast<std::int64_t>(ids.size() - common));

  std::vector<float> x(static_cast<std::size_t>(d));
  std::vector<float> norm(static_cast<std::size_t>(d));
  std::vector<float> qkv(static_cast<std::size_t>(3 * d));
  std::vector<float> ctx(static_cast<std::size_t>(d));
  std::vector<float> attn_out(static_cast<std::size_t>(d));
  std::vector<float> ff(static_cast<std::size_t>(cfg.d_ff));
  std::vector<float> ff_out(static_cast<std::size_t>(d));
  std::vector<float> att;

  for (std::size_t pos = common; pos < ids.size(); ++pos) {
    const int t = static_cast<int>(pos);
    const float* e = tok_emb.w.row(ids[pos]);
    const float* p = pos_emb.w.row(t);
    for (int i = 0; i < d; ++i) x[static_cast<std::size_t>(i)] = e[i] + p[i];

    for (int li = 0; li < cfg.n_layers; ++li) {
      const LayerParams& lp = layers[static_cast<std::size_t>(li)];
      Mat& kc = kv.k[static_cast<std::size_t>(li)];
      Mat& vc = kv.v[static_cast<std::size_t>(li)];

      ln_vec(x.data(), lp.ln1_g, lp.ln1_b, d, norm.data());
      vec_matmul(norm.data(), lp.w_qkv.w, lp.b_qkv, d, 3 * d, qkv.data());
      // Append this position's K and V to the cache.
      std::copy(qkv.begin() + d, qkv.begin() + 2 * d, kc.row(t));
      std::copy(qkv.begin() + 2 * d, qkv.begin() + 3 * d, vc.row(t));

      std::fill(ctx.begin(), ctx.end(), 0.0f);
      att.assign(pos + 1, 0.0f);
      for (int h = 0; h < nh; ++h) {
        const int off = h * dh;
        const float* q = qkv.data() + off;
        float maxv = -1e30f;
        for (std::size_t u = 0; u <= pos; ++u) {
          const float* ku = kc.row(static_cast<int>(u)) + off;
          float acc = 0.0f;
          for (int i = 0; i < dh; ++i) acc += q[i] * ku[i];
          att[u] = acc * scale;
          maxv = std::max(maxv, att[u]);
        }
        float total = 0.0f;
        for (std::size_t u = 0; u <= pos; ++u) {
          att[u] = std::exp(att[u] - maxv);
          total += att[u];
        }
        const float inv = 1.0f / total;
        float* ch = ctx.data() + off;
        for (std::size_t u = 0; u <= pos; ++u) {
          const float a = att[u] * inv;
          const float* vu = vc.row(static_cast<int>(u)) + off;
          for (int i = 0; i < dh; ++i) ch[i] += a * vu[i];
        }
      }
      vec_matmul(ctx.data(), lp.w_o.w, lp.b_o, d, d, attn_out.data());
      for (int i = 0; i < d; ++i)
        x[static_cast<std::size_t>(i)] += attn_out[static_cast<std::size_t>(i)];

      ln_vec(x.data(), lp.ln2_g, lp.ln2_b, d, norm.data());
      vec_matmul(norm.data(), lp.w_fc1.w, lp.b_fc1, d, cfg.d_ff, ff.data());
      for (float& v : ff) v = gelu(v);
      vec_matmul(ff.data(), lp.w_fc2.w, lp.b_fc2, cfg.d_ff, d, ff_out.data());
      for (int i = 0; i < d; ++i)
        x[static_cast<std::size_t>(i)] += ff_out[static_cast<std::size_t>(i)];
    }
  }

  ln_vec(x.data(), lnf_g, lnf_b, d, norm.data());
  std::vector<float> logits(static_cast<std::size_t>(cfg.vocab_size));
  vec_matmul(norm.data(), w_out.w, b_out, d, cfg.vocab_size, logits.data());
  return logits;
}

// Cross-session batched decode. Sessions advance position-by-position in
// lockstep: at every step, the per-position weight matmuls of all sessions
// that still have unprocessed positions are fused into batch_vec_matmul
// calls, while the scalar stages (LayerNorm, attention over the session's
// own KV cache, GELU, residuals) run per session with the exact code shape
// of decode_logits. Sessions with shorter suffixes simply drop out of the
// active set early; the final LN + output projection is batched over all
// sessions at the end. Per-session arithmetic order is identical to the
// sequential path throughout, so each returned row is bit-identical to what
// decode_logits would produce for that (ids, cache) pair.
std::vector<std::vector<float>> Transformer::Impl::decode_logits_batch(
    std::span<const std::vector<int>> ids_list,
    std::span<KvCache* const> caches) const {
  const std::size_t ns = ids_list.size();
  const int d = cfg.d_model;
  const int nh = cfg.n_heads;
  const int dh = d / nh;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  std::vector<std::size_t> pos(ns), end(ns);
  std::int64_t reused = 0;
  std::int64_t recomputed = 0;
  for (std::size_t s = 0; s < ns; ++s) {
    ensure_cache_shape(*caches[s]);
    pos[s] = kv_common_prefix(*caches[s], ids_list[s]);
    end[s] = ids_list[s].size();
    reused += static_cast<std::int64_t>(pos[s]);
    recomputed += static_cast<std::int64_t>(end[s] - pos[s]);
  }
  record_kv_counters(reused, recomputed);

  // Per-session workspaces, one row each. Sized once for the whole batch.
  Mat x(static_cast<int>(ns), d);
  Mat norm(static_cast<int>(ns), d);
  Mat qkv(static_cast<int>(ns), 3 * d);
  Mat ctx(static_cast<int>(ns), d);
  Mat attn_out(static_cast<int>(ns), d);
  Mat ff(static_cast<int>(ns), cfg.d_ff);
  Mat ff_out(static_cast<int>(ns), d);
  Mat final_x(static_cast<int>(ns), d);
  std::vector<float> att;

  std::vector<std::size_t> active;
  std::vector<const float*> in_ptrs;
  std::vector<float*> out_ptrs;
  const auto batched = [&](const Mat& in_rows, const Mat& w, const Param& b,
                           int m, int n, Mat& out_rows) {
    in_ptrs.clear();
    out_ptrs.clear();
    for (const std::size_t s : active) {
      in_ptrs.push_back(in_rows.row(static_cast<int>(s)));
      out_ptrs.push_back(out_rows.row(static_cast<int>(s)));
    }
    batch_vec_matmul(in_ptrs, w, b, m, n, out_ptrs);
  };

  while (true) {
    active.clear();
    for (std::size_t s = 0; s < ns; ++s)
      if (pos[s] < end[s]) active.push_back(s);
    if (active.empty()) break;

    for (const std::size_t s : active) {
      const int t = static_cast<int>(pos[s]);
      const float* e = tok_emb.w.row(ids_list[s][pos[s]]);
      const float* p = pos_emb.w.row(t);
      float* xs = x.row(static_cast<int>(s));
      for (int i = 0; i < d; ++i) xs[i] = e[i] + p[i];
    }

    for (int li = 0; li < cfg.n_layers; ++li) {
      const LayerParams& lp = layers[static_cast<std::size_t>(li)];

      for (const std::size_t s : active)
        ln_vec(x.row(static_cast<int>(s)), lp.ln1_g, lp.ln1_b, d,
               norm.row(static_cast<int>(s)));
      batched(norm, lp.w_qkv.w, lp.b_qkv, d, 3 * d, qkv);

      for (const std::size_t s : active) {
        const int si = static_cast<int>(s);
        const int t = static_cast<int>(pos[s]);
        Mat& kc = caches[s]->k[static_cast<std::size_t>(li)];
        Mat& vc = caches[s]->v[static_cast<std::size_t>(li)];
        const float* sq = qkv.row(si);
        std::copy(sq + d, sq + 2 * d, kc.row(t));
        std::copy(sq + 2 * d, sq + 3 * d, vc.row(t));

        float* cs = ctx.row(si);
        std::fill(cs, cs + d, 0.0f);
        att.assign(pos[s] + 1, 0.0f);
        for (int h = 0; h < nh; ++h) {
          const int off = h * dh;
          const float* q = sq + off;
          float maxv = -1e30f;
          for (std::size_t u = 0; u <= pos[s]; ++u) {
            const float* ku = kc.row(static_cast<int>(u)) + off;
            float acc = 0.0f;
            for (int i = 0; i < dh; ++i) acc += q[i] * ku[i];
            att[u] = acc * scale;
            maxv = std::max(maxv, att[u]);
          }
          float total = 0.0f;
          for (std::size_t u = 0; u <= pos[s]; ++u) {
            att[u] = std::exp(att[u] - maxv);
            total += att[u];
          }
          const float inv = 1.0f / total;
          float* ch = cs + off;
          for (std::size_t u = 0; u <= pos[s]; ++u) {
            const float a = att[u] * inv;
            const float* vu = vc.row(static_cast<int>(u)) + off;
            for (int i = 0; i < dh; ++i) ch[i] += a * vu[i];
          }
        }
      }
      batched(ctx, lp.w_o.w, lp.b_o, d, d, attn_out);
      for (const std::size_t s : active) {
        const int si = static_cast<int>(s);
        float* xs = x.row(si);
        const float* ao = attn_out.row(si);
        for (int i = 0; i < d; ++i) xs[i] += ao[i];
      }

      for (const std::size_t s : active)
        ln_vec(x.row(static_cast<int>(s)), lp.ln2_g, lp.ln2_b, d,
               norm.row(static_cast<int>(s)));
      batched(norm, lp.w_fc1.w, lp.b_fc1, d, cfg.d_ff, ff);
      for (const std::size_t s : active) {
        float* fs = ff.row(static_cast<int>(s));
        for (int i = 0; i < cfg.d_ff; ++i) fs[i] = gelu(fs[i]);
      }
      batched(ff, lp.w_fc2.w, lp.b_fc2, cfg.d_ff, d, ff_out);
      for (const std::size_t s : active) {
        const int si = static_cast<int>(s);
        float* xs = x.row(si);
        const float* fo = ff_out.row(si);
        for (int i = 0; i < d; ++i) xs[i] += fo[i];
      }
    }

    for (const std::size_t s : active) {
      ++pos[s];
      if (pos[s] == end[s]) {
        const int si = static_cast<int>(s);
        std::copy(x.row(si), x.row(si) + d, final_x.row(si));
      }
    }
  }

  // Final LN per session, then one batched output projection over everyone
  // (w_out is the widest matrix in the model — the biggest single win).
  active.clear();
  for (std::size_t s = 0; s < ns; ++s) active.push_back(s);
  for (const std::size_t s : active)
    ln_vec(final_x.row(static_cast<int>(s)), lnf_g, lnf_b, d,
           norm.row(static_cast<int>(s)));

  std::vector<std::vector<float>> out(
      ns, std::vector<float>(static_cast<std::size_t>(cfg.vocab_size)));
  in_ptrs.clear();
  out_ptrs.clear();
  for (std::size_t s = 0; s < ns; ++s) {
    in_ptrs.push_back(norm.row(static_cast<int>(s)));
    out_ptrs.push_back(out[s].data());
  }
  batch_vec_matmul(in_ptrs, w_out.w, b_out, d, cfg.vocab_size, out_ptrs);
  return out;
}

Transformer::Transformer(TransformerConfig config, util::Rng& rng)
    : config_(config), impl_(std::make_unique<Impl>()) {
  LEJIT_REQUIRE(config.vocab_size > 0, "vocab_size must be positive");
  LEJIT_REQUIRE(config.d_model % config.n_heads == 0,
                "d_model must be divisible by n_heads");
  LEJIT_REQUIRE(config.max_seq > 1, "max_seq must exceed 1");
  impl_->cfg = config;
  impl_->init(rng);
}

Transformer::~Transformer() = default;
Transformer::Transformer(Transformer&&) noexcept = default;
Transformer& Transformer::operator=(Transformer&&) noexcept = default;

std::size_t Transformer::num_parameters() const noexcept {
  std::size_t n = 0;
  for (const Param* p : impl_->all_params()) n += p->w.size();
  return n;
}

namespace {

// START-prefixed, range-checked input ids, windowed to the last max_seq-1
// context tokens — the shared front half of every inference path.
std::vector<int> window_context(const TransformerConfig& cfg,
                                std::span<const int> context) {
  const int start_id = cfg.vocab_size;
  const std::size_t keep =
      std::min(context.size(), static_cast<std::size_t>(cfg.max_seq - 1));
  std::vector<int> ids;
  ids.reserve(keep + 1);
  ids.push_back(start_id);
  for (std::size_t i = context.size() - keep; i < context.size(); ++i) {
    const int t = context[i];
    LEJIT_REQUIRE(t >= 0 && t < cfg.vocab_size, "token id out of range");
    ids.push_back(t);
  }
  return ids;
}

void record_forward(std::int64_t t0) {
  auto& registry = obs::MetricsRegistry::instance();
  static obs::Counter& c_forwards = registry.counter("lm.transformer.forwards");
  static obs::Histogram& h_latency =
      registry.histogram("lm.transformer.forward_latency_us");
  c_forwards.inc();
  h_latency.observe(static_cast<double>(obs::now_ns() - t0) * 1e-3);
}

}  // namespace

std::vector<float> Transformer::logits(std::span<const int> context) const {
  fault::inject(fault::Site::kLmForward);
  const ReentrancyGuard guard(impl_->logits_owner);
  const bool obs_on = obs::metrics_enabled();
  const std::int64_t t0 = obs_on ? obs::now_ns() : 0;
  std::vector<float> out =
      impl_->decode_logits(window_context(config_, context), impl_->cache);
  if (obs_on) record_forward(t0);
  return out;
}

std::vector<float> Transformer::logits(std::span<const int> context,
                                       KvCache& cache) const {
  fault::inject(fault::Site::kLmForward);
  const bool obs_on = obs::metrics_enabled();
  const std::int64_t t0 = obs_on ? obs::now_ns() : 0;
  std::vector<float> out =
      impl_->decode_logits(window_context(config_, context), cache);
  if (obs_on) record_forward(t0);
  return out;
}

std::vector<std::vector<float>> Transformer::logits_batch(
    std::span<const std::vector<int>> contexts,
    std::span<KvCache* const> caches) const {
  LEJIT_REQUIRE(contexts.size() == caches.size(),
                "logits_batch: contexts/caches size mismatch");
  LEJIT_REQUIRE(!contexts.empty(), "logits_batch: empty batch");
  for (std::size_t i = 0; i < caches.size(); ++i) {
    LEJIT_REQUIRE(caches[i] != nullptr, "logits_batch: null KvCache");
    for (std::size_t j = i + 1; j < caches.size(); ++j)
      LEJIT_REQUIRE(caches[i] != caches[j],
                    "logits_batch: sessions must use distinct KvCaches");
  }
  fault::inject(fault::Site::kLmForward);
  const bool obs_on = obs::metrics_enabled();
  const std::int64_t t0 = obs_on ? obs::now_ns() : 0;
  std::vector<std::vector<int>> ids_list;
  ids_list.reserve(contexts.size());
  for (const auto& context : contexts)
    ids_list.push_back(window_context(config_, context));
  std::vector<std::vector<float>> out =
      impl_->decode_logits_batch(ids_list, caches);
  if (obs_on) {
    auto& registry = obs::MetricsRegistry::instance();
    static obs::Counter& c_batches =
        registry.counter("lm.transformer.batched_forwards");
    static obs::Counter& c_rows =
        registry.counter("lm.transformer.batched_contexts");
    static obs::Histogram& h_latency =
        registry.histogram("lm.transformer.batched_forward_latency_us");
    c_batches.inc();
    c_rows.add(static_cast<std::int64_t>(contexts.size()));
    h_latency.observe(static_cast<double>(obs::now_ns() - t0) * 1e-3);
  }
  return out;
}

namespace {

// Build the START-prefixed input ids and the targets for one row, capped to
// the model's context length.
void make_training_pair(const std::vector<int>& row, int max_seq, int start_id,
                        std::vector<int>& ids, std::vector<int>& targets) {
  LEJIT_REQUIRE(!row.empty(), "empty training row");
  const std::size_t keep =
      std::min(row.size(), static_cast<std::size_t>(max_seq - 1));
  ids.clear();
  ids.reserve(keep);
  ids.push_back(start_id);
  for (std::size_t i = 0; i + 1 < keep; ++i) ids.push_back(row[i]);
  targets.assign(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(keep));
}

}  // namespace

float Transformer::train_batch(std::span<const std::vector<int>> batch,
                               const AdamConfig& adam) {
  LEJIT_REQUIRE(!batch.empty(), "empty training batch");
  impl_->zero_grads();
  double total_loss = 0.0;
  std::vector<int> ids, targets;
  for (const auto& row : batch) {
    make_training_pair(row, config_.max_seq, config_.vocab_size, ids, targets);
    ForwardCache fc;
    impl_->forward(ids, fc);
    Mat dlogits;
    total_loss += impl_->loss_and_dlogits(fc, targets, dlogits);
    // Scale gradient by 1/batch for a mean-loss step.
    const float inv_b = 1.0f / static_cast<float>(batch.size());
    for (float& g : dlogits.data) g *= inv_b;
    impl_->backward(fc, dlogits);
  }
  impl_->adam_step(adam);
  impl_->invalidate_cache();
  return static_cast<float>(total_loss / static_cast<double>(batch.size()));
}

namespace {
constexpr std::uint32_t kCheckpointMagic = 0x4C654A54;  // "LeJT"
constexpr std::uint32_t kCheckpointVersion = 1;
}  // namespace

void Transformer::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw util::RuntimeError("cannot open checkpoint for write: " + path);
  const auto put_u32 = [&](std::uint32_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put_u32(kCheckpointMagic);
  put_u32(kCheckpointVersion);
  for (const int v : {config_.vocab_size, config_.d_model, config_.n_layers,
                      config_.n_heads, config_.d_ff, config_.max_seq})
    put_u32(static_cast<std::uint32_t>(v));
  const std::vector<float> flat = parameters_flat();
  put_u32(static_cast<std::uint32_t>(flat.size()));
  out.write(reinterpret_cast<const char*>(flat.data()),
            static_cast<std::streamsize>(flat.size() * sizeof(float)));
  if (!out) throw util::RuntimeError("checkpoint write failed: " + path);
}

Transformer Transformer::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::RuntimeError("cannot open checkpoint: " + path);
  const auto get_u32 = [&]() {
    std::uint32_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  if (get_u32() != kCheckpointMagic)
    throw util::RuntimeError("not a LeJIT checkpoint: " + path);
  if (get_u32() != kCheckpointVersion)
    throw util::RuntimeError("unsupported checkpoint version: " + path);
  TransformerConfig cfg;
  cfg.vocab_size = static_cast<int>(get_u32());
  cfg.d_model = static_cast<int>(get_u32());
  cfg.n_layers = static_cast<int>(get_u32());
  cfg.n_heads = static_cast<int>(get_u32());
  cfg.d_ff = static_cast<int>(get_u32());
  cfg.max_seq = static_cast<int>(get_u32());
  util::Rng init_rng(0);
  Transformer model(cfg, init_rng);
  const auto count = get_u32();
  std::vector<float> flat(count);
  in.read(reinterpret_cast<char*>(flat.data()),
          static_cast<std::streamsize>(flat.size() * sizeof(float)));
  if (!in) throw util::RuntimeError("truncated checkpoint: " + path);
  model.set_parameters_flat(flat);
  return model;
}

std::vector<float> Transformer::parameters_flat() const {
  std::vector<float> flat;
  for (const Param* p : impl_->all_params())
    flat.insert(flat.end(), p->w.data.begin(), p->w.data.end());
  return flat;
}

void Transformer::set_parameters_flat(std::span<const float> flat) {
  std::size_t offset = 0;
  for (Param* p : impl_->all_params()) {
    LEJIT_REQUIRE(offset + p->w.size() <= flat.size(),
                  "flat parameter vector too short");
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(offset),
              flat.begin() + static_cast<std::ptrdiff_t>(offset + p->w.size()),
              p->w.data.begin());
    offset += p->w.size();
  }
  LEJIT_REQUIRE(offset == flat.size(), "flat parameter vector size mismatch");
  impl_->invalidate_cache();
}

std::pair<float, std::vector<float>> Transformer::loss_and_gradient(
    std::span<const std::vector<int>> rows) {
  LEJIT_REQUIRE(!rows.empty(), "empty gradient batch");
  impl_->zero_grads();
  double total_loss = 0.0;
  std::vector<int> ids, targets;
  for (const auto& row : rows) {
    make_training_pair(row, config_.max_seq, config_.vocab_size, ids, targets);
    ForwardCache fc;
    impl_->forward(ids, fc);
    Mat dlogits;
    total_loss += impl_->loss_and_dlogits(fc, targets, dlogits);
    const float inv_b = 1.0f / static_cast<float>(rows.size());
    for (float& g : dlogits.data) g *= inv_b;
    impl_->backward(fc, dlogits);
  }
  std::vector<float> grad;
  for (const Param* p : impl_->all_params())
    grad.insert(grad.end(), p->g.data.begin(), p->g.data.end());
  return {static_cast<float>(total_loss / static_cast<double>(rows.size())),
          std::move(grad)};
}

float Transformer::evaluate(std::span<const std::vector<int>> rows) const {
  LEJIT_REQUIRE(!rows.empty(), "empty evaluation set");
  double total = 0.0;
  std::vector<int> ids, targets;
  for (const auto& row : rows) {
    make_training_pair(row, config_.max_seq, config_.vocab_size, ids, targets);
    ForwardCache fc;
    impl_->forward(ids, fc);
    Mat dlogits;
    total += impl_->loss_and_dlogits(fc, targets, dlogits);
  }
  return static_cast<float>(total / static_cast<double>(rows.size()));
}

}  // namespace lejit::lm
