#include "lm/ngram.hpp"

#include <cmath>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"

namespace lejit::lm {

NgramModel::NgramModel(int vocab_size, NgramConfig config)
    : vocab_size_(vocab_size), config_(config) {
  LEJIT_REQUIRE(vocab_size > 0, "vocab_size must be positive");
  LEJIT_REQUIRE(config.order >= 1, "order must be at least 1");
  LEJIT_REQUIRE(config.add_k > 0.0, "add_k must be positive");
}

std::uint64_t NgramModel::context_key(std::span<const int> context) {
  // FNV-1a over the tokens plus a length tag so that ("a") and ("", "a")
  // style collisions across orders cannot happen.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(static_cast<std::uint64_t>(context.size()) + 0x9e3779b97f4a7c15ULL);
  for (const int t : context) mix(static_cast<std::uint64_t>(t) + 1);
  return h;
}

void NgramModel::observe(std::span<const int> tokens) {
  for (std::size_t pos = 0; pos < tokens.size(); ++pos) {
    const int next = tokens[pos];
    LEJIT_REQUIRE(next >= 0 && next < vocab_size_, "token id out of range");
    const std::size_t max_ctx =
        std::min(pos, static_cast<std::size_t>(config_.order - 1));
    for (std::size_t len = 0; len <= max_ctx; ++len) {
      const auto ctx = tokens.subspan(pos - len, len);
      auto& slot = counts_[context_key(ctx)];
      if (slot.empty()) slot.resize(static_cast<std::size_t>(vocab_size_), 0);
      ++slot[static_cast<std::size_t>(next)];
      ++total_events_;
    }
  }
}

std::vector<float> NgramModel::logits(std::span<const int> context) const {
  fault::inject(fault::Site::kLmForward);
  const bool obs_on = obs::metrics_enabled();
  const std::int64_t t0 = obs_on ? obs::now_ns() : 0;
  // Interpolated back-off: start from the longest matching context and blend
  // shorter ones with geometrically decaying weight.
  std::vector<double> probs(static_cast<std::size_t>(vocab_size_), 0.0);
  double weight_left = 1.0;

  const std::size_t max_len =
      std::min(context.size(), static_cast<std::size_t>(config_.order - 1));
  for (std::size_t len = max_len + 1; len-- > 0;) {
    const auto ctx = context.subspan(context.size() - len, len);
    const auto it = counts_.find(context_key(ctx));
    const double level_weight =
        (len == 0) ? weight_left : weight_left * (1.0 - config_.backoff);
    if (it != counts_.end()) {
      double total = 0.0;
      for (const auto c : it->second) total += c;
      total += config_.add_k * vocab_size_;
      for (int v = 0; v < vocab_size_; ++v) {
        probs[static_cast<std::size_t>(v)] +=
            level_weight *
            (it->second[static_cast<std::size_t>(v)] + config_.add_k) / total;
      }
    } else if (len == 0) {
      // Unseen empty context (untrained model): uniform.
      for (double& p : probs) p += level_weight / vocab_size_;
    } else {
      continue;  // no mass spent at this level; all of it backs off
    }
    if (len == 0) break;
    weight_left *= config_.backoff;
  }

  std::vector<float> out(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i)
    out[i] = static_cast<float>(std::log(probs[i] + 1e-12));
  if (obs_on) {
    auto& registry = obs::MetricsRegistry::instance();
    static obs::Counter& c_forwards = registry.counter("lm.ngram.forwards");
    static obs::Histogram& h_latency =
        registry.histogram("lm.ngram.forward_latency_us");
    c_forwards.inc();
    h_latency.observe(static_cast<double>(obs::now_ns() - t0) * 1e-3);
  }
  return out;
}

}  // namespace lejit::lm
