// The language-model interface LeJIT decodes against.
//
// LeJIT is LM-agnostic (paper §4): anything that maps a token prefix to
// next-token logits can be guided. The repository provides two
// implementations — a back-off n-gram model (fast, used for large benchmark
// sweeps) and a GPT-2-style transformer trained from scratch (the paper's
// configuration).
#pragma once

#include <span>
#include <vector>

namespace lejit::lm {

class LanguageModel {
 public:
  virtual ~LanguageModel() = default;

  virtual int vocab_size() const = 0;

  // Unnormalized log-probabilities of the next token given `context`
  // (most recent token last). Must return exactly vocab_size() entries.
  virtual std::vector<float> logits(std::span<const int> context) const = 0;
};

}  // namespace lejit::lm
