// Character-level tokenizer.
//
// The paper adopts character-level tokenization (§3, citing Charformer) so
// that numeric fields are generated digit by digit, which is what lets the
// SMT solver steer individual value prefixes. Token ids are dense indices
// into a fixed alphabet; '\n' terminates a sample row.
#pragma once

#include <array>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace lejit::lm {

class CharTokenizer {
 public:
  // Build a tokenizer over the distinct characters of `alphabet`
  // (deduplicated, stable order of first appearance).
  explicit CharTokenizer(std::string_view alphabet);

  // Build from a corpus: alphabet = all distinct characters, sorted.
  static CharTokenizer from_corpus(std::string_view corpus);

  int vocab_size() const noexcept { return static_cast<int>(chars_.size()); }

  bool has_char(char c) const noexcept {
    return to_id_[static_cast<unsigned char>(c)] >= 0;
  }

  // Token id for a character; precondition: has_char(c).
  int encode_char(char c) const;
  char decode_char(int id) const;

  std::vector<int> encode(std::string_view text) const;
  std::string decode(std::span<const int> ids) const;

  // Convenience: ids of the ten decimal digits, in numeric order.
  std::array<int, 10> digit_ids() const;

  // Id of '\n' if present (the row terminator).
  std::optional<int> newline_id() const;

 private:
  std::vector<char> chars_;
  std::array<int, 256> to_id_{};
};

}  // namespace lejit::lm
