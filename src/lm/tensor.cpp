#include "lm/tensor.hpp"

namespace lejit::lm {

void matmul(const Mat& a, const Mat& b, Mat& c) {
  LEJIT_REQUIRE(a.cols == b.rows, "matmul shape mismatch");
  if (c.rows != a.rows || c.cols != b.cols) c = Mat(a.rows, b.cols);
  else c.zero();
  for (int i = 0; i < a.rows; ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (int k = 0; k < a.cols; ++k) {
      const float aik = ai[k];
      if (aik == 0.0f) continue;
      const float* bk = b.row(k);
      for (int j = 0; j < b.cols; ++j) ci[j] += aik * bk[j];
    }
  }
}

void matmul_tA_accum(const Mat& a, const Mat& b, Mat& c) {
  LEJIT_REQUIRE(a.rows == b.rows, "matmul_tA shape mismatch");
  LEJIT_REQUIRE(c.rows == a.cols && c.cols == b.cols,
                "matmul_tA output shape mismatch");
  for (int k = 0; k < a.rows; ++k) {
    const float* ak = a.row(k);
    const float* bk = b.row(k);
    for (int i = 0; i < a.cols; ++i) {
      const float aki = ak[i];
      if (aki == 0.0f) continue;
      float* ci = c.row(i);
      for (int j = 0; j < b.cols; ++j) ci[j] += aki * bk[j];
    }
  }
}

void matmul_tB(const Mat& a, const Mat& b, Mat& c) {
  LEJIT_REQUIRE(a.cols == b.cols, "matmul_tB shape mismatch");
  if (c.rows != a.rows || c.cols != b.rows) c = Mat(a.rows, b.rows);
  else c.zero();
  for (int i = 0; i < a.rows; ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (int j = 0; j < b.rows; ++j) {
      const float* bj = b.row(j);
      float acc = 0.0f;
      for (int k = 0; k < a.cols; ++k) acc += ai[k] * bj[k];
      ci[j] = acc;
    }
  }
}

}  // namespace lejit::lm
