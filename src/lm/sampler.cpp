#include "lm/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace lejit::lm {

std::vector<double> softmax(std::span<const float> logits, double temperature) {
  LEJIT_REQUIRE(!logits.empty(), "empty logits");
  std::vector<double> probs(logits.size());
  if (temperature <= 0.0) {
    // Degenerate distribution on the argmax.
    const auto it = std::max_element(logits.begin(), logits.end());
    probs[static_cast<std::size_t>(it - logits.begin())] = 1.0;
    return probs;
  }
  double max_logit = -1e30;
  for (const float l : logits) max_logit = std::max(max_logit, static_cast<double>(l));
  double total = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    probs[i] = std::exp((static_cast<double>(logits[i]) - max_logit) / temperature);
    total += probs[i];
  }
  for (double& p : probs) p /= total;
  return probs;
}

int sample_token(std::span<const float> logits, const SamplerConfig& config,
                 util::Rng& rng, std::span<const bool> mask) {
  LEJIT_REQUIRE(mask.empty() || mask.size() == logits.size(),
                "mask size must match vocabulary size");
  std::vector<double> probs = softmax(logits, config.temperature);

  if (!mask.empty()) {
    bool any = false;
    for (std::size_t i = 0; i < probs.size(); ++i) {
      if (!mask[i]) probs[i] = 0.0;
      else any = true;
    }
    LEJIT_REQUIRE(any, "mask allows no token");
  }

  if (config.top_k > 0 && static_cast<std::size_t>(config.top_k) < probs.size()) {
    std::vector<std::size_t> order(probs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::nth_element(order.begin(),
                     order.begin() + static_cast<std::ptrdiff_t>(config.top_k),
                     order.end(),
                     [&](std::size_t a, std::size_t b) { return probs[a] > probs[b]; });
    for (std::size_t r = static_cast<std::size_t>(config.top_k); r < order.size(); ++r)
      probs[order[r]] = 0.0;
  }

  double total = 0.0;
  for (const double p : probs) total += p;
  if (total <= 0.0) {
    // All mass truncated (e.g. top-k removed every allowed token): fall back
    // to the best allowed token.
    double best = -1e30;
    int best_i = 0;
    for (std::size_t i = 0; i < logits.size(); ++i) {
      if (!mask.empty() && !mask[i]) continue;
      if (logits[i] > best) {
        best = logits[i];
        best_i = static_cast<int>(i);
      }
    }
    return best_i;
  }

  if (config.temperature <= 0.0) {
    // Greedy: argmax over the (masked) distribution.
    const auto it = std::max_element(probs.begin(), probs.end());
    return static_cast<int>(it - probs.begin());
  }

  const double target = rng.uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    acc += probs[i];
    if (target < acc) return static_cast<int>(i);
  }
  return static_cast<int>(probs.size()) - 1;
}

double allowed_mass(std::span<const float> logits, std::span<const bool> mask) {
  LEJIT_REQUIRE(mask.size() == logits.size(), "mask size must match vocab");
  const std::vector<double> probs = softmax(logits, 1.0);
  double mass = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i)
    if (mask[i]) mass += probs[i];
  return mass;
}

}  // namespace lejit::lm
