#include "lm/tokenizer.hpp"

#include <algorithm>
#include <set>

namespace lejit::lm {

CharTokenizer::CharTokenizer(std::string_view alphabet) {
  to_id_.fill(-1);
  for (const char c : alphabet) {
    const auto u = static_cast<unsigned char>(c);
    if (to_id_[u] >= 0) continue;
    to_id_[u] = static_cast<int>(chars_.size());
    chars_.push_back(c);
  }
  LEJIT_REQUIRE(!chars_.empty(), "tokenizer alphabet must be non-empty");
}

CharTokenizer CharTokenizer::from_corpus(std::string_view corpus) {
  const std::set<char> distinct(corpus.begin(), corpus.end());
  return CharTokenizer(std::string(distinct.begin(), distinct.end()));
}

int CharTokenizer::encode_char(char c) const {
  const int id = to_id_[static_cast<unsigned char>(c)];
  LEJIT_REQUIRE(id >= 0, std::string("character not in alphabet: '") + c + "'");
  return id;
}

char CharTokenizer::decode_char(int id) const {
  LEJIT_REQUIRE(id >= 0 && id < vocab_size(), "token id out of range");
  return chars_[static_cast<std::size_t>(id)];
}

std::vector<int> CharTokenizer::encode(std::string_view text) const {
  std::vector<int> out;
  out.reserve(text.size());
  for (const char c : text) out.push_back(encode_char(c));
  return out;
}

std::string CharTokenizer::decode(std::span<const int> ids) const {
  std::string out;
  out.reserve(ids.size());
  for (const int id : ids) out.push_back(decode_char(id));
  return out;
}

std::array<int, 10> CharTokenizer::digit_ids() const {
  std::array<int, 10> out{};
  for (int d = 0; d < 10; ++d)
    out[static_cast<std::size_t>(d)] = encode_char(static_cast<char>('0' + d));
  return out;
}

std::optional<int> CharTokenizer::newline_id() const {
  if (!has_char('\n')) return std::nullopt;
  return encode_char('\n');
}

}  // namespace lejit::lm
