// Minimal dense-matrix support for the transformer.
//
// Row-major float matrices with the three GEMM variants backprop needs.
// Everything is sized for nano-scale models (d_model ≤ 128, seq ≤ 256), so
// clarity beats blocking/vectorization tricks here.
#pragma once

#include <span>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace lejit::lm {

struct Mat {
  int rows = 0;
  int cols = 0;
  std::vector<float> data;

  Mat() = default;
  Mat(int r, int c) : rows(r), cols(c), data(static_cast<std::size_t>(r) * static_cast<std::size_t>(c), 0.0f) {
    LEJIT_REQUIRE(r >= 0 && c >= 0, "negative matrix dimension");
  }

  float* row(int r) {
    return data.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols);
  }
  const float* row(int r) const {
    return data.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols);
  }
  float& at(int r, int c) { return row(r)[c]; }
  float at(int r, int c) const { return row(r)[c]; }

  void zero() { std::fill(data.begin(), data.end(), 0.0f); }

  void init_normal(util::Rng& rng, float stddev) {
    for (float& v : data) v = static_cast<float>(rng.normal(0.0, stddev));
  }

  std::size_t size() const noexcept { return data.size(); }
};

// C = A * B                 (A: m×k, B: k×n, C: m×n)
void matmul(const Mat& a, const Mat& b, Mat& c);
// C += A^T * B              (A: k×m, B: k×n, C: m×n) — weight gradients
void matmul_tA_accum(const Mat& a, const Mat& b, Mat& c);
// C = A * B^T               (A: m×k, B: n×k, C: m×n) — input gradients
void matmul_tB(const Mat& a, const Mat& b, Mat& c);

}  // namespace lejit::lm
