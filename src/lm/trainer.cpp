#include "lm/trainer.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace lejit::lm {

TrainReport train_lm(Transformer& model,
                     std::span<const std::vector<int>> rows,
                     const TrainConfig& config, util::Rng& rng,
                     const std::function<void(int, float)>& on_log) {
  LEJIT_REQUIRE(!rows.empty(), "training corpus is empty");
  LEJIT_REQUIRE(config.steps > 0 && config.batch_size > 0,
                "steps and batch_size must be positive");

  TrainReport report;
  report.steps = config.steps;
  const float peak_lr = config.adam.lr;

  for (int step = 0; step < config.steps; ++step) {
    std::vector<std::vector<int>> batch;
    batch.reserve(static_cast<std::size_t>(config.batch_size));
    for (int b = 0; b < config.batch_size; ++b) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(rows.size()) - 1));
      batch.push_back(rows[idx]);
    }

    AdamConfig adam = config.adam;
    if (config.warmup_steps > 0 && step < config.warmup_steps) {
      adam.lr = peak_lr * static_cast<float>(step + 1) /
                static_cast<float>(config.warmup_steps);
    } else if (config.cosine_decay) {
      const float progress =
          static_cast<float>(step - config.warmup_steps) /
          std::max(1.0f, static_cast<float>(config.steps - config.warmup_steps));
      const float cos01 =
          0.5f * (1.0f + std::cos(std::numbers::pi_v<float> * progress));
      adam.lr = peak_lr * (0.1f + 0.9f * cos01);
    }

    const float loss = model.train_batch(batch, adam);
    if (step == 0) report.first_loss = loss;
    report.final_loss = loss;
    if (on_log && config.log_every > 0 && step % config.log_every == 0)
      on_log(step, loss);
  }
  return report;
}

}  // namespace lejit::lm
