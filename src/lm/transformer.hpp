// A GPT-2-style decoder-only transformer, trained from scratch in-process.
//
// This mirrors the paper's setup (§4: "we train GPT-2 from scratch on the
// datacenter dataset and adopt character-level tokenization") at nano scale:
// learned token + position embeddings, pre-LN blocks with causal multi-head
// self-attention and a GELU MLP, and an untied output head. Forward,
// backward (full manual backprop) and AdamW live here; no external ML
// dependency is used anywhere in the repository.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "lm/lm.hpp"
#include "lm/tensor.hpp"
#include "util/rng.hpp"

namespace lejit::lm {

struct TransformerConfig {
  int vocab_size = 0;
  int d_model = 64;
  int n_layers = 2;
  int n_heads = 2;
  int d_ff = 128;
  int max_seq = 160;
};

struct AdamConfig {
  float lr = 3e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.99f;
  float eps = 1e-8f;
  float weight_decay = 0.01f;
  float grad_clip = 1.0f;  // global-norm clip; <= 0 disables
};

class Transformer final : public LanguageModel {
 public:
  Transformer(TransformerConfig config, util::Rng& rng);
  ~Transformer() override;

  Transformer(const Transformer&) = delete;
  Transformer& operator=(const Transformer&) = delete;
  Transformer(Transformer&&) noexcept;
  Transformer& operator=(Transformer&&) noexcept;

  const TransformerConfig& config() const noexcept { return config_; }
  std::size_t num_parameters() const noexcept;

  // --- inference ---------------------------------------------------------
  int vocab_size() const override { return config_.vocab_size; }
  // Next-token logits after `context` (uses at most the last max_seq-1
  // tokens). An empty context yields the unconditional first-token logits
  // (position 0 with a learned start embedding).
  //
  // Decoding fast path: an internal KV cache makes repeated calls with
  // growing contexts (the decoder's access pattern) O(context) instead of
  // O(context²) per call. The cache is invisible semantically — logits are
  // bit-identical to a cold forward pass — but makes logits() non-reentrant;
  // guard externally if sharing one instance across threads.
  std::vector<float> logits(std::span<const int> context) const override;

  // --- training ----------------------------------------------------------
  // One optimizer step on a batch of token rows. Each row is trained with
  // next-token cross-entropy over all positions (a start token is prepended
  // internally so the first real token is also predicted). Returns the mean
  // per-token loss.
  float train_batch(std::span<const std::vector<int>> batch,
                    const AdamConfig& adam);

  // Mean next-token cross-entropy of `rows` without updating weights.
  float evaluate(std::span<const std::vector<int>> rows) const;

  // --- persistence -----------------------------------------------------------
  // Binary checkpoint: config + weights. Optimizer state is not saved; a
  // loaded model can continue training but Adam moments restart from zero.
  void save(const std::string& path) const;
  static Transformer load(const std::string& path);

  // --- introspection (gradient checks, checkpointing) ----------------------
  // Flat copy of all parameters, in a stable internal order.
  std::vector<float> parameters_flat() const;
  // Overwrite all parameters from a flat vector of matching size.
  void set_parameters_flat(std::span<const float> flat);
  // Mean loss over `rows` and the full gradient (same flat order), without
  // touching the weights or optimizer state.
  std::pair<float, std::vector<float>> loss_and_gradient(
      std::span<const std::vector<int>> rows);

 private:
  struct Impl;
  TransformerConfig config_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace lejit::lm
