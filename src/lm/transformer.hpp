// A GPT-2-style decoder-only transformer, trained from scratch in-process.
//
// This mirrors the paper's setup (§4: "we train GPT-2 from scratch on the
// datacenter dataset and adopt character-level tokenization") at nano scale:
// learned token + position embeddings, pre-LN blocks with causal multi-head
// self-attention and a GELU MLP, and an untied output head. Forward,
// backward (full manual backprop) and AdamW live here; no external ML
// dependency is used anywhere in the repository.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "lm/lm.hpp"
#include "lm/tensor.hpp"
#include "util/rng.hpp"

namespace lejit::lm {

struct TransformerConfig {
  int vocab_size = 0;
  int d_model = 64;
  int n_layers = 2;
  int n_heads = 2;
  int d_ff = 128;
  int max_seq = 160;
};

struct AdamConfig {
  float lr = 3e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.99f;
  float eps = 1e-8f;
  float weight_decay = 0.01f;
  float grad_clip = 1.0f;  // global-norm clip; <= 0 disables
};

// Per-session key/value cache for incremental decoding (DESIGN.md §13).
//
// The cache holds, per layer, the K and V rows of every position of the last
// processed context, keyed by the START-prefixed token ids. It is
// semantically invisible: logits computed through a cache are bit-identical
// to a cold forward pass. A Transformer keeps one internal KvCache for the
// plain logits() path; callers that decode concurrently over one shared
// model own one KvCache per session instead (see TransformerSession and
// Transformer::logits_batch) — the model weights are read-only during
// inference, so distinct caches make concurrent decoding safe.
//
// A KvCache is bound to one model: training steps or set_parameters_flat()
// invalidate only the model's internal cache, so session caches must be
// clear()ed by their owners if the weights change under them.
struct KvCache {
  std::vector<int> ids;   // START-prefixed ids the cached rows correspond to
  std::vector<Mat> k, v;  // per layer, (max_seq, d_model)

  void clear() noexcept { ids.clear(); }
};

class Transformer final : public LanguageModel {
 public:
  Transformer(TransformerConfig config, util::Rng& rng);
  ~Transformer() override;

  Transformer(const Transformer&) = delete;
  Transformer& operator=(const Transformer&) = delete;
  Transformer(Transformer&&) noexcept;
  Transformer& operator=(Transformer&&) noexcept;

  const TransformerConfig& config() const noexcept { return config_; }
  std::size_t num_parameters() const noexcept;

  // --- inference ---------------------------------------------------------
  int vocab_size() const override { return config_.vocab_size; }
  // Next-token logits after `context` (uses at most the last max_seq-1
  // tokens). An empty context yields the unconditional first-token logits
  // (position 0 with a learned start embedding).
  //
  // Decoding fast path: an internal KV cache makes repeated calls with
  // growing contexts (the decoder's access pattern) O(context) instead of
  // O(context²) per call. The cache is invisible semantically — logits are
  // bit-identical to a cold forward pass — but makes logits() non-reentrant:
  // a runtime guard aborts with a diagnostic if two threads overlap in here
  // (use TransformerSession / the KvCache overloads to share a model).
  //
  // Cache-efficiency note (lm.kv.* counters): while the context is shorter
  // than max_seq-1 every step reuses the full cached prefix and recomputes
  // only the final token. Once the context reaches the window limit the
  // sliding window shifts by one every step, the common prefix check
  // matches nothing, and every call recomputes all max_seq positions — the
  // documented O(ctx²) post-window regime, visible as lm.kv.recomputed_tokens
  // outpacing lm.kv.reused_tokens.
  std::vector<float> logits(std::span<const int> context) const override;

  // Same computation through a caller-owned KvCache. Thread-safe for
  // concurrent calls with *distinct* caches (weights are read-only); the
  // reentrancy guard does not apply. Bit-identical to logits(context).
  std::vector<float> logits(std::span<const int> context, KvCache& cache) const;

  // Cross-session batched forward (the serve runtime's hot path): decode the
  // next-token logits for N independent contexts in one pass, stacking the
  // per-position weight matmuls so one sweep over each weight matrix serves
  // every session. `caches[i]` must be distinct per-session caches. The
  // result for each session is bit-identical to logits(contexts[i]) — the
  // batched kernel preserves the exact per-element float summation order of
  // the sequential path — so batching is schedule-invisible by construction.
  std::vector<std::vector<float>> logits_batch(
      std::span<const std::vector<int>> contexts,
      std::span<KvCache* const> caches) const;

  // --- training ----------------------------------------------------------
  // One optimizer step on a batch of token rows. Each row is trained with
  // next-token cross-entropy over all positions (a start token is prepended
  // internally so the first real token is also predicted). Returns the mean
  // per-token loss.
  float train_batch(std::span<const std::vector<int>> batch,
                    const AdamConfig& adam);

  // Mean next-token cross-entropy of `rows` without updating weights.
  float evaluate(std::span<const std::vector<int>> rows) const;

  // --- persistence -----------------------------------------------------------
  // Binary checkpoint: config + weights. Optimizer state is not saved; a
  // loaded model can continue training but Adam moments restart from zero.
  void save(const std::string& path) const;
  static Transformer load(const std::string& path);

  // --- introspection (gradient checks, checkpointing) ----------------------
  // Flat copy of all parameters, in a stable internal order.
  std::vector<float> parameters_flat() const;
  // Overwrite all parameters from a flat vector of matching size.
  void set_parameters_flat(std::span<const float> flat);
  // Mean loss over `rows` and the full gradient (same flat order), without
  // touching the weights or optimizer state.
  std::pair<float, std::vector<float>> loss_and_gradient(
      std::span<const std::vector<int>> rows);

 private:
  struct Impl;
  TransformerConfig config_;
  std::unique_ptr<Impl> impl_;
};

// A per-thread / per-session view of a shared Transformer: same logits, but
// the KV cache lives here, so any number of sessions can decode concurrently
// over one read-only model (e.g. a core::DecoderFactory capturing a shared
// model hands each worker its own TransformerSession). The model must
// outlive the session and must not be trained while sessions are live.
class TransformerSession final : public LanguageModel {
 public:
  explicit TransformerSession(const Transformer& model) : model_(model) {}

  int vocab_size() const override { return model_.vocab_size(); }
  std::vector<float> logits(std::span<const int> context) const override {
    return model_.logits(context, cache_);
  }

  const Transformer& model() const noexcept { return model_; }
  KvCache& cache() noexcept { return cache_; }

 private:
  const Transformer& model_;
  mutable KvCache cache_;
};

}  // namespace lejit::lm
