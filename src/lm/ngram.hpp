// Back-off n-gram character language model.
//
// A counting model with add-k smoothing and Stupid-Backoff-style weighting.
// It trains in milliseconds and serves as the fast LM for large benchmark
// sweeps (the transformer in transformer.hpp is the paper-faithful model;
// both sit behind the same LanguageModel interface).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "lm/lm.hpp"

namespace lejit::lm {

struct NgramConfig {
  int order = 5;              // context length + 1
  double add_k = 0.1;         // additive smoothing within a context
  double backoff = 0.4;       // weight multiplier per back-off level
};

class NgramModel final : public LanguageModel {
 public:
  NgramModel(int vocab_size, NgramConfig config = {});

  // Accumulate counts from one token sequence (a training row, including
  // its terminator token).
  void observe(std::span<const int> tokens);

  // Number of observed (context, next) events across all orders.
  std::int64_t total_events() const noexcept { return total_events_; }

  int vocab_size() const override { return vocab_size_; }
  std::vector<float> logits(std::span<const int> context) const override;

 private:
  // Rolling 64-bit context key; order tag keeps lengths distinct.
  static std::uint64_t context_key(std::span<const int> context);

  int vocab_size_;
  NgramConfig config_;
  // Per-context next-token counts (dense per context; alphabet is tiny).
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> counts_;
  std::int64_t total_events_ = 0;
};

}  // namespace lejit::lm
