// Training loop for the from-scratch LM (batching, LR schedule, logging).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "lm/transformer.hpp"
#include "util/rng.hpp"

namespace lejit::lm {

struct TrainConfig {
  int steps = 300;
  int batch_size = 16;
  AdamConfig adam{};
  int warmup_steps = 20;     // linear LR warmup
  bool cosine_decay = true;  // decay to 10% of peak over the run
  int log_every = 0;         // 0 disables logging
};

struct TrainReport {
  float first_loss = 0.0f;
  float final_loss = 0.0f;
  int steps = 0;
};

// Train `model` on token rows sampled uniformly with replacement.
// `on_log`, when set, receives (step, loss) every `log_every` steps.
TrainReport train_lm(
    Transformer& model, std::span<const std::vector<int>> rows,
    const TrainConfig& config, util::Rng& rng,
    const std::function<void(int, float)>& on_log = nullptr);

}  // namespace lejit::lm
