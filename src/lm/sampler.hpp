// Sampling from next-token distributions, with and without a validity mask.
//
// The masked path is the mechanism LeJIT uses to enforce rules: logits of
// invalid tokens are removed and the remaining distribution is renormalized,
// which preserves the LM's relative preferences among valid tokens — the
// "statistical fidelity" property the paper argues for.
#pragma once

#include <span>
#include <vector>

#include "util/rng.hpp"

namespace lejit::lm {

struct SamplerConfig {
  double temperature = 1.0;  // <= 0 means greedy argmax
  int top_k = 0;             // 0 disables top-k truncation
};

// Softmax with temperature; numerically stable. Returns probabilities.
std::vector<double> softmax(std::span<const float> logits, double temperature);

// Sample a token id from `logits`. `mask`, when non-empty, marks allowed
// token ids (mask[i] == true ⇔ allowed) and must contain at least one
// allowed token.
int sample_token(std::span<const float> logits, const SamplerConfig& config,
                 util::Rng& rng, std::span<const bool> mask = {});

// Probability mass assigned to allowed tokens before renormalization —
// LeJIT's "minimal invasiveness" diagnostic (1.0 means the mask was a no-op).
double allowed_mass(std::span<const float> logits, std::span<const bool> mask);

}  // namespace lejit::lm
