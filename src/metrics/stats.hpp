// Statistical distances and accuracy metrics used by the evaluation.
//
// These implement the exact metric set the paper reports: Earth Mover's
// Distance (1-D Wasserstein-1, computed exactly from empirical quantile
// functions), Jensen–Shannon divergence over histograms, tail quantiles,
// autocorrelation, and MAE/RMSE.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lejit::metrics {

// Exact 1-D Wasserstein-1 distance between two empirical distributions
// (samples need not be sorted or equally sized; both must be non-empty).
double emd(std::span<const double> a, std::span<const double> b);
double emd(std::span<const std::int64_t> a, std::span<const std::int64_t> b);

// Histogram with `bins` equal-width buckets over [lo, hi]; values outside
// are clamped into the edge buckets. Returns probabilities (sums to 1).
std::vector<double> histogram(std::span<const std::int64_t> values, double lo,
                              double hi, int bins);

// Jensen–Shannon divergence (base-2 logs, so the result lies in [0, 1])
// between two probability vectors of equal length.
double jsd(std::span<const double> p, std::span<const double> q);

// JSD between two samples via shared-range histograms.
double jsd_samples(std::span<const std::int64_t> a,
                   std::span<const std::int64_t> b, int bins = 32);

// Empirical quantile (nearest-rank on the sorted copy), q in [0, 1].
double quantile(std::span<const double> values, double q);
double quantile(std::span<const std::int64_t> values, double q);

// Lag-k autocorrelation of a series (0 when variance vanishes).
double autocorrelation(std::span<const double> series, int lag);

// Paired errors.
double mae(std::span<const double> truth, std::span<const double> pred);
double rmse(std::span<const double> truth, std::span<const double> pred);

}  // namespace lejit::metrics
