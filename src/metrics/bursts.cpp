#include "metrics/bursts.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace lejit::metrics {

std::vector<Burst> extract_bursts(std::span<const std::int64_t> series,
                                  std::int64_t threshold) {
  std::vector<Burst> bursts;
  int run_start = -1;
  std::int64_t run_peak = 0;
  for (int t = 0; t <= static_cast<int>(series.size()); ++t) {
    const bool above = t < static_cast<int>(series.size()) &&
                       series[static_cast<std::size_t>(t)] >= threshold;
    if (above) {
      if (run_start < 0) {
        run_start = t;
        run_peak = 0;
      }
      run_peak = std::max(run_peak, series[static_cast<std::size_t>(t)]);
    } else if (run_start >= 0) {
      bursts.push_back(Burst{run_start, t - run_start, run_peak});
      run_start = -1;
    }
  }
  return bursts;
}

BurstErrors burst_errors(std::span<const std::int64_t> truth,
                         std::span<const std::int64_t> pred,
                         std::int64_t threshold, int series_len) {
  const auto bt = extract_bursts(truth, threshold);
  const auto bp = extract_bursts(pred, threshold);

  BurstErrors e;
  e.count = std::abs(static_cast<double>(bt.size()) -
                     static_cast<double>(bp.size()));

  const std::size_t paired = std::min(bt.size(), bp.size());
  const std::size_t unmatched = std::max(bt.size(), bp.size()) - paired;
  const std::size_t denom = paired + unmatched;
  if (denom == 0) return e;  // no bursts on either side: perfect agreement

  double h = 0, d = 0, p = 0;
  for (std::size_t i = 0; i < paired; ++i) {
    h += std::abs(static_cast<double>(bt[i].height - bp[i].height));
    d += std::abs(static_cast<double>(bt[i].duration - bp[i].duration));
    p += std::abs(static_cast<double>(bt[i].start - bp[i].start));
  }
  // Missing/hallucinated bursts: maximal penalty on each axis.
  const auto mismatch = static_cast<double>(unmatched);
  h += mismatch * static_cast<double>(threshold);
  d += mismatch * static_cast<double>(series_len);
  p += mismatch * static_cast<double>(series_len);

  e.height = h / static_cast<double>(denom);
  e.duration = d / static_cast<double>(denom);
  e.position = p / static_cast<double>(denom);
  return e;
}

BurstErrors mean_burst_errors(
    std::span<const std::vector<std::int64_t>> truths,
    std::span<const std::vector<std::int64_t>> preds,
    std::int64_t threshold) {
  LEJIT_REQUIRE(truths.size() == preds.size() && !truths.empty(),
                "mean_burst_errors requires equal-length non-empty sets");
  BurstErrors acc;
  for (std::size_t i = 0; i < truths.size(); ++i) {
    const auto e = burst_errors(truths[i], preds[i], threshold,
                                static_cast<int>(truths[i].size()));
    acc.count += e.count;
    acc.height += e.height;
    acc.duration += e.duration;
    acc.position += e.position;
  }
  const auto n = static_cast<double>(truths.size());
  acc.count /= n;
  acc.height /= n;
  acc.duration /= n;
  acc.position /= n;
  return acc;
}

}  // namespace lejit::metrics
