// Burst analysis: the downstream task of Fig. 4 (right).
//
// Following the datacenter burst study the dataset models (Ghabashneh et
// al.) and Zoom2Net's downstream evaluation, a burst is a maximal run of
// fine-grained readings at or above a threshold (half the link bandwidth).
// We compare bursts of an imputed series against the ground-truth series on
// the paper's four axes: count, height, duration, and position.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lejit::metrics {

struct Burst {
  int start = 0;            // first slot of the run
  int duration = 0;         // run length in slots
  std::int64_t height = 0;  // peak reading within the run
};

std::vector<Burst> extract_bursts(std::span<const std::int64_t> series,
                                  std::int64_t threshold);

// Per-series absolute errors between true and imputed burst behaviour.
// Height/duration/position compare per-burst (greedily paired in order);
// unmatched bursts contribute the maximum penalty so "hallucinated" and
// "missed" bursts both hurt.
struct BurstErrors {
  double count = 0;     // |#bursts_true - #bursts_pred|
  double height = 0;    // mean |height diff| over paired bursts
  double duration = 0;  // mean |duration diff| over paired bursts
  double position = 0;  // mean |start diff| over paired bursts
};

BurstErrors burst_errors(std::span<const std::int64_t> truth,
                         std::span<const std::int64_t> pred,
                         std::int64_t threshold, int series_len);

// Mean of per-series errors over a whole test set (vectors zipped).
BurstErrors mean_burst_errors(
    std::span<const std::vector<std::int64_t>> truths,
    std::span<const std::vector<std::int64_t>> preds, std::int64_t threshold);

}  // namespace lejit::metrics
