#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace lejit::metrics {

namespace {

std::vector<double> to_double(std::span<const std::int64_t> v) {
  return std::vector<double>(v.begin(), v.end());
}

}  // namespace

double emd(std::span<const double> a, std::span<const double> b) {
  LEJIT_REQUIRE(!a.empty() && !b.empty(), "emd of empty sample");
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  // Integrate |F_a^{-1}(q) - F_b^{-1}(q)| over q ∈ [0,1]. Both quantile
  // functions are step functions with breakpoints at i/|a| and j/|b|; sweep
  // the union of breakpoints.
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t i = 0, j = 0;
  double q = 0.0, total = 0.0;
  while (i < sa.size() && j < sb.size()) {
    const double qa = static_cast<double>(i + 1) / na;
    const double qb = static_cast<double>(j + 1) / nb;
    const double next = std::min(qa, qb);
    total += (next - q) * std::abs(sa[i] - sb[j]);
    q = next;
    if (qa <= next) ++i;
    if (qb <= next) ++j;
  }
  return total;
}

double emd(std::span<const std::int64_t> a, std::span<const std::int64_t> b) {
  const auto da = to_double(a);
  const auto db = to_double(b);
  return emd(std::span<const double>(da), std::span<const double>(db));
}

std::vector<double> histogram(std::span<const std::int64_t> values, double lo,
                              double hi, int bins) {
  LEJIT_REQUIRE(bins > 0, "bins must be positive");
  LEJIT_REQUIRE(hi > lo, "histogram range must be non-degenerate");
  std::vector<double> h(static_cast<std::size_t>(bins), 0.0);
  if (values.empty()) return h;
  const double width = (hi - lo) / bins;
  for (const std::int64_t v : values) {
    int idx = static_cast<int>((static_cast<double>(v) - lo) / width);
    idx = std::clamp(idx, 0, bins - 1);
    h[static_cast<std::size_t>(idx)] += 1.0;
  }
  for (double& p : h) p /= static_cast<double>(values.size());
  return h;
}

double jsd(std::span<const double> p, std::span<const double> q) {
  LEJIT_REQUIRE(p.size() == q.size() && !p.empty(),
                "jsd requires equal-length non-empty distributions");
  const auto kl_to_mixture = [&](std::span<const double> x) {
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i] <= 0.0) continue;
      const double m = 0.5 * (p[i] + q[i]);
      acc += x[i] * std::log2(x[i] / m);
    }
    return acc;
  };
  return 0.5 * kl_to_mixture(p) + 0.5 * kl_to_mixture(q);
}

double jsd_samples(std::span<const std::int64_t> a,
                   std::span<const std::int64_t> b, int bins) {
  LEJIT_REQUIRE(!a.empty() && !b.empty(), "jsd of empty sample");
  std::int64_t lo = a[0], hi = a[0];
  for (const auto v : a) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (const auto v : b) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (lo == hi) return 0.0;  // identical degenerate supports
  const auto ha = histogram(a, static_cast<double>(lo),
                            static_cast<double>(hi) + 1.0, bins);
  const auto hb = histogram(b, static_cast<double>(lo),
                            static_cast<double>(hi) + 1.0, bins);
  return jsd(ha, hb);
}

double quantile(std::span<const double> values, double q) {
  LEJIT_REQUIRE(!values.empty(), "quantile of empty sample");
  LEJIT_REQUIRE(q >= 0.0 && q <= 1.0, "quantile order out of range");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

double quantile(std::span<const std::int64_t> values, double q) {
  const auto d = to_double(values);
  return quantile(std::span<const double>(d), q);
}

double autocorrelation(std::span<const double> series, int lag) {
  LEJIT_REQUIRE(lag >= 0, "negative lag");
  const auto n = static_cast<std::ptrdiff_t>(series.size());
  if (n <= lag) return 0.0;
  double mean = 0.0;
  for (const double v : series) mean += v;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (const double v : series) var += (v - mean) * (v - mean);
  if (var <= 1e-12) return 0.0;
  double cov = 0.0;
  for (std::ptrdiff_t t = 0; t + lag < n; ++t)
    cov += (series[static_cast<std::size_t>(t)] - mean) *
           (series[static_cast<std::size_t>(t + lag)] - mean);
  return cov / var;
}

double mae(std::span<const double> truth, std::span<const double> pred) {
  LEJIT_REQUIRE(truth.size() == pred.size() && !truth.empty(),
                "mae requires equal-length non-empty vectors");
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i)
    acc += std::abs(truth[i] - pred[i]);
  return acc / static_cast<double>(truth.size());
}

double rmse(std::span<const double> truth, std::span<const double> pred) {
  LEJIT_REQUIRE(truth.size() == pred.size() && !truth.empty(),
                "rmse requires equal-length non-empty vectors");
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - pred[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

}  // namespace lejit::metrics
