#include "rules/checker.hpp"

namespace lejit::rules {

std::vector<std::size_t> violated_rules(const RuleSet& set,
                                        const telemetry::Window& w) {
  const std::vector<smt::Int> a = field_assignment(w);
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < set.rules.size(); ++i)
    if (!set.rules[i].formula->eval(a)) out.push_back(i);
  return out;
}

ViolationStats check_violations(const RuleSet& set,
                                std::span<const telemetry::Window> windows) {
  ViolationStats stats;
  stats.rules = set.rules.size();
  for (const auto& w : windows) {
    ++stats.windows;
    const auto violated = violated_rules(set, w);
    if (!violated.empty()) ++stats.violating_windows;
    stats.rule_violations += static_cast<std::int64_t>(violated.size());
  }
  return stats;
}

}  // namespace lejit::rules
