// Rule-violation accounting over generated/imputed windows.
//
// Produces the numbers behind Fig. 3 (left) and Fig. 5's compliance claim:
// how often a generator's output breaks the mined rule set.
#pragma once

#include <span>

#include "rules/rule.hpp"

namespace lejit::rules {

struct ViolationStats {
  std::size_t windows = 0;             // samples checked
  std::size_t violating_windows = 0;   // samples breaking >= 1 rule
  std::int64_t rule_violations = 0;    // total (sample, rule) violations
  std::size_t rules = 0;               // rule-set size

  // Fraction of samples that violate at least one rule (the paper's
  // headline "violation rate").
  double window_rate() const {
    return windows == 0
               ? 0.0
               : static_cast<double>(violating_windows) /
                     static_cast<double>(windows);
  }
  // Fraction of (sample, rule) pairs violated.
  double pair_rate() const {
    const auto pairs =
        static_cast<double>(windows) * static_cast<double>(rules);
    return pairs == 0.0 ? 0.0 : static_cast<double>(rule_violations) / pairs;
  }
};

// Indices of the rules `w` violates.
std::vector<std::size_t> violated_rules(const RuleSet& set,
                                        const telemetry::Window& w);

// Aggregate violation statistics over many windows.
ViolationStats check_violations(const RuleSet& set,
                                std::span<const telemetry::Window> windows);

}  // namespace lejit::rules
