// Network rules: named, checkable, solver-ready logic constraints.
//
// A rule is an smt::Formula built against the *canonical field ordering* of
// a RowLayout (field i ↔ smt::VarId{i}), plus human-readable metadata. The
// same formula object is used three ways:
//   1. checking — evaluate against a concrete window (violation counting),
//   2. solving  — assert into a Solver whose variables were declared with
//      declare_fields() (LeJIT's guidance, post-hoc repair),
//   3. mining   — the miner emits rules in this form directly.
#pragma once

#include <string>
#include <vector>

#include "smt/backend.hpp"
#include "smt/formula.hpp"
#include "smt/solver.hpp"
#include "telemetry/text.hpp"

namespace lejit::rules {

using telemetry::Int;

enum class RuleKind {
  kBound,        // lo <= field <= hi
  kSumEquality,  // sum(fine) == total
  kImplication,  // antecedent ⇒ consequent (burst rules, conditional bounds)
  kPairwise,     // linear relation between two coarse fields
  kManual,       // hand-written rule (the Zoom2Net C4–C7 analogues)
};

struct Rule {
  std::string description;
  RuleKind kind = RuleKind::kManual;
  smt::Formula formula;
  // True if the rule references fine-grained fields (such rules only apply
  // to the imputation task; the synthesis task sees coarse-only rules).
  bool uses_fine = false;
};

struct RuleSet {
  std::vector<Rule> rules;

  std::size_t size() const { return rules.size(); }
  bool empty() const { return rules.empty(); }

  // The subset not referencing fine fields (synthesis-task rules).
  RuleSet coarse_only() const;

  // Serialize to the rule-file syntax of rules/parser.hpp, one rule per
  // line. Miner- and parser-produced rules always round-trip (their
  // descriptions *are* the syntax); hand-built rules round-trip when their
  // description is written in that syntax.
  std::string to_text() const;
};

// Compose rule sets (the paper's §5 "compose rule sets on the fly"): the
// union of the inputs, deduplicated by description (first occurrence wins).
RuleSet merge(std::initializer_list<const RuleSet*> sets);

// Distinct variable indices `f` references, sorted ascending. Constant
// formulas (kTrue/kFalse, incl. rules folded to constants at construction)
// reference nothing. Shared by lint's structural checks and plan's
// dependency-graph construction, so both see the same notion of "touches".
std::vector<int> referenced_fields(const smt::Formula& f);

// Declare one solver variable per layout field, in canonical order, with the
// field's [0, max_value] domain. Must be called on a fresh solver before any
// rule formula is asserted.
std::vector<smt::VarId> declare_fields(smt::Solver& solver,
                                       const telemetry::RowLayout& layout);
// Same, against a pluggable backend session (the decoder's solver substrate).
std::vector<smt::VarId> declare_fields(smt::Backend& backend,
                                       const telemetry::RowLayout& layout);

// Assert every rule of `set` into `solver` (current scope).
void assert_rules(smt::Solver& solver, const RuleSet& set);
void assert_rules(smt::Backend& backend, const RuleSet& set);

// Window → assignment vector in canonical field order.
std::vector<smt::Int> field_assignment(const telemetry::Window& w);

// Index of a field name in the layout's canonical order; -1 if absent.
int field_index(const telemetry::RowLayout& layout, std::string_view name);

// The four hand-specified rules used by the paper's "manual rules" baseline
// (analogues of Zoom2Net's C4–C7): per-slot bandwidth bounds, exact sum
// accounting, the congestion⇒burst implication, and the egress≤ingress
// accounting rule.
RuleSet manual_rules(const telemetry::RowLayout& layout,
                     const telemetry::Limits& limits);

}  // namespace lejit::rules
