#include "rules/parser.hpp"

#include <cctype>
#include <optional>

#include "util/strings.hpp"

namespace lejit::rules {

namespace {

using smt::Formula;
using smt::LinExpr;
using smt::VarId;

enum class AggKind { kNone, kMax, kMin };

struct Operand {
  AggKind agg = AggKind::kNone;  // kMax/kMin: `expr` unused
  LinExpr expr;
};

enum class Cmp { kLe, kLt, kGe, kGt, kEq, kNe };

// Single-line recursive-descent parser.
class LineParser {
 public:
  LineParser(std::string_view text, const telemetry::RowLayout& layout,
             std::span<const VarId> fine_vars)
      : text_(text), layout_(layout), fine_vars_(fine_vars) {}

  // Returns nullopt and sets error() on failure.
  std::optional<Formula> parse(bool& uses_fine) {
    uses_fine_ = false;
    Formula lhs = parse_clause();
    if (!lhs) return std::nullopt;
    skip_ws();
    if (consume("=>")) {
      const Formula rhs = parse_clause();
      if (!rhs) return std::nullopt;
      skip_ws();
      if (!at_end()) {
        set_error("trailing input after consequent");
        return std::nullopt;
      }
      uses_fine = uses_fine_;
      return smt::implies(lhs, rhs);
    }
    if (!at_end()) {
      set_error("trailing input after clause");
      return std::nullopt;
    }
    uses_fine = uses_fine_;
    return lhs;
  }

  const std::string& error() const { return error_; }

 private:
  // --- clause --------------------------------------------------------------
  Formula parse_clause() {
    const auto lhs = parse_operand();
    if (!lhs) return nullptr;
    const auto cmp = parse_cmp();
    if (!cmp) return nullptr;
    const auto rhs = parse_operand();
    if (!rhs) return nullptr;
    if (lhs->agg != AggKind::kNone && rhs->agg != AggKind::kNone) {
      set_error("aggregates on both sides are not supported");
      return nullptr;
    }
    if (rhs->agg != AggKind::kNone) {
      // Flip so the aggregate is on the left: a ⋈ agg ⇔ agg ⋈⁻¹ a.
      return build_clause(*rhs, flip(*cmp), lhs->expr);
    }
    return build_clause(*lhs, *cmp, rhs->expr);
  }

  static Cmp flip(Cmp c) {
    switch (c) {
      case Cmp::kLe: return Cmp::kGe;
      case Cmp::kLt: return Cmp::kGt;
      case Cmp::kGe: return Cmp::kLe;
      case Cmp::kGt: return Cmp::kLt;
      case Cmp::kEq: return Cmp::kEq;
      case Cmp::kNe: return Cmp::kNe;
    }
    LEJIT_UNREACHABLE("cmp");
  }

  Formula build_clause(const Operand& lhs, Cmp cmp, const LinExpr& rhs) {
    if (lhs.agg == AggKind::kNone) {
      switch (cmp) {
        case Cmp::kLe: return smt::le(lhs.expr, rhs);
        case Cmp::kLt: return smt::lt(lhs.expr, rhs);
        case Cmp::kGe: return smt::ge(lhs.expr, rhs);
        case Cmp::kGt: return smt::gt(lhs.expr, rhs);
        case Cmp::kEq: return smt::eq(lhs.expr, rhs);
        case Cmp::kNe: return smt::ne(lhs.expr, rhs);
      }
    }
    if (fine_vars_.empty()) {
      set_error("aggregate used but the layout has no fine fields");
      return nullptr;
    }
    uses_fine_ = true;
    const bool is_max = lhs.agg == AggKind::kMax;
    switch (cmp) {
      case Cmp::kLe:
        return is_max ? smt::max_le(fine_vars_, rhs) : smt::min_le(fine_vars_, rhs);
      case Cmp::kLt:
        return is_max ? smt::max_le(fine_vars_, rhs - LinExpr(1))
                      : smt::min_le(fine_vars_, rhs - LinExpr(1));
      case Cmp::kGe:
        return is_max ? smt::max_ge(fine_vars_, rhs) : smt::min_ge(fine_vars_, rhs);
      case Cmp::kGt:
        return is_max ? smt::max_ge(fine_vars_, rhs + LinExpr(1))
                      : smt::min_ge(fine_vars_, rhs + LinExpr(1));
      case Cmp::kEq:
        return is_max ? smt::land(smt::max_le(fine_vars_, rhs),
                                  smt::max_ge(fine_vars_, rhs))
                      : smt::land(smt::min_le(fine_vars_, rhs),
                                  smt::min_ge(fine_vars_, rhs));
      case Cmp::kNe:
        return smt::lnot(build_clause(lhs, Cmp::kEq, rhs));
    }
    LEJIT_UNREACHABLE("cmp");
  }

  // --- operands --------------------------------------------------------------
  std::optional<Operand> parse_operand() {
    skip_ws();
    if (consume_word("max")) return parse_agg(AggKind::kMax);
    if (consume_word("min")) return parse_agg(AggKind::kMin);
    return parse_lin();
  }

  std::optional<Operand> parse_agg(AggKind kind) {
    if (!expect_agg_args()) return std::nullopt;
    Operand op;
    op.agg = kind;
    return op;
  }

  bool expect_agg_args() {
    skip_ws();
    if (!consume("(")) {
      set_error("expected '(' after aggregate");
      return false;
    }
    skip_ws();
    if (!consume_word("I") && !consume_word("fine")) {
      set_error("aggregates range over the fine fields: write max(I)");
      return false;
    }
    skip_ws();
    if (!consume(")")) {
      set_error("expected ')' after aggregate argument");
      return false;
    }
    return true;
  }

  std::optional<Operand> parse_lin() {
    Operand op;
    bool first = true;
    while (true) {
      skip_ws();
      smt::Int sign = 1;
      if (consume("+")) {
        sign = 1;
      } else if (consume("-")) {
        sign = -1;
      } else if (!first) {
        break;
      }
      skip_ws();
      const auto term = parse_term();
      if (!term) {
        if (first) return std::nullopt;
        set_error("expected term after '+'/'-'");
        return std::nullopt;
      }
      op.expr += sign * *term;
      first = false;
      skip_ws();
      if (!peek_any("+-")) break;
    }
    if (first) {
      set_error("expected a linear expression");
      return std::nullopt;
    }
    return op;
  }

  std::optional<LinExpr> parse_term() {
    skip_ws();
    // Tolerate a signed literal ("+ -90"), as some generators emit it.
    smt::Int term_sign = 1;
    if (peek() == '-' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      term_sign = -1;
      ++pos_;
    }
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      const smt::Int k = term_sign * parse_int();
      skip_ws();
      if (consume("*")) {
        skip_ws();
        const auto v = parse_field_or_sum();
        if (!v) return std::nullopt;
        return k * *v;
      }
      return LinExpr(k);
    }
    return parse_field_or_sum();
  }

  std::optional<LinExpr> parse_field_or_sum() {
    skip_ws();
    if (consume_word("sum")) {
      if (!expect_agg_args()) return std::nullopt;
      if (fine_vars_.empty()) {
        set_error("sum(I) used but the layout has no fine fields");
        return std::nullopt;
      }
      uses_fine_ = true;
      LinExpr sum;
      for (const VarId v : fine_vars_) sum += LinExpr(v);
      return sum;
    }
    const std::string name = parse_ident();
    if (name.empty()) {
      set_error("expected a field name or integer");
      return std::nullopt;
    }
    const int idx = field_index(layout_, name);
    if (idx < 0) {
      set_error("unknown field '" + name + "'");
      return std::nullopt;
    }
    if (layout_.fields[static_cast<std::size_t>(idx)].is_fine)
      uses_fine_ = true;
    return LinExpr(VarId{idx});
  }

  std::optional<Cmp> parse_cmp() {
    skip_ws();
    if (consume("<=")) return Cmp::kLe;
    if (consume(">=")) return Cmp::kGe;
    if (consume("==")) return Cmp::kEq;
    if (consume("!=")) return Cmp::kNe;
    if (consume("<")) return Cmp::kLt;
    if (consume(">")) return Cmp::kGt;
    set_error("expected a comparison operator");
    return std::nullopt;
  }

  // --- lexing ------------------------------------------------------------------
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool at_end() const { return pos_ >= text_.size(); }
  bool peek_any(std::string_view set) const {
    return set.find(peek()) != std::string_view::npos;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  bool consume(std::string_view literal) {
    if (text_.substr(pos_).starts_with(literal)) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }
  // Consume `word` only if not followed by an identifier character
  // ("max" must not eat the prefix of a field called "maxima").
  bool consume_word(std::string_view word) {
    if (!text_.substr(pos_).starts_with(word)) return false;
    const std::size_t after = pos_ + word.size();
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) ||
         text_[after] == '_'))
      return false;
    pos_ = after;
    return true;
  }
  smt::Int parse_int() {
    smt::Int v = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      v = v * 10 + (text_[pos_] - '0');
      ++pos_;
    }
    return v;
  }
  std::string parse_ident() {
    std::string out;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      out.push_back(text_[pos_]);
      ++pos_;
    }
    return out;
  }
  void set_error(std::string message) {
    if (error_.empty()) error_ = std::move(message);
  }

  std::string_view text_;
  const telemetry::RowLayout& layout_;
  std::span<const VarId> fine_vars_;
  std::size_t pos_ = 0;
  std::string error_;
  bool uses_fine_ = false;
};

}  // namespace

ParsedRules parse_rules(std::string_view text,
                        const telemetry::RowLayout& layout) {
  std::vector<VarId> fine_vars;
  for (int i = 0; i < layout.num_fields(); ++i)
    if (layout.fields[static_cast<std::size_t>(i)].is_fine)
      fine_vars.push_back(VarId{i});

  ParsedRules out;
  std::size_t line_no = 0;
  for (const auto raw_line : util::split(text, '\n')) {
    ++line_no;
    std::string_view line = raw_line;
    if (const auto hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    line = util::trim(line);
    if (line.empty()) continue;

    LineParser parser(line, layout, fine_vars);
    bool uses_fine = false;
    const auto formula = parser.parse(uses_fine);
    if (!formula) {
      out.errors.push_back(ParseError{line_no, parser.error()});
      continue;
    }
    out.rules.rules.push_back(Rule{
        .description = std::string(line),
        .kind = RuleKind::kManual,
        .formula = *formula,
        .uses_fine = uses_fine,
    });
  }
  return out;
}

}  // namespace lejit::rules
