#include "rules/rule.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/error.hpp"

namespace lejit::rules {

RuleSet RuleSet::coarse_only() const {
  RuleSet out;
  for (const Rule& r : rules)
    if (!r.uses_fine) out.rules.push_back(r);
  return out;
}

std::string RuleSet::to_text() const {
  std::string out;
  out += "# LeJIT rule set (" + std::to_string(rules.size()) + " rules)\n";
  for (const Rule& r : rules) {
    out += r.description;
    out += '\n';
  }
  return out;
}

namespace {

void collect_referenced(const smt::Formula& f, std::vector<int>& out) {
  switch (f->kind()) {
    case smt::FormulaKind::kTrue:
    case smt::FormulaKind::kFalse:
      return;
    case smt::FormulaKind::kAtom:
      for (const auto& [var, coeff] : f->atom_expr().terms()) {
        (void)coeff;
        out.push_back(var.index);
      }
      return;
    case smt::FormulaKind::kAnd:
    case smt::FormulaKind::kOr:
      for (const auto& c : f->children()) collect_referenced(c, out);
      return;
  }
}

}  // namespace

std::vector<int> referenced_fields(const smt::Formula& f) {
  std::vector<int> out;
  if (f != nullptr) collect_referenced(f, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

RuleSet merge(std::initializer_list<const RuleSet*> sets) {
  RuleSet out;
  std::set<std::string_view> seen;
  for (const RuleSet* set : sets) {
    LEJIT_REQUIRE(set != nullptr, "null rule set in merge");
    for (const Rule& r : set->rules) {
      if (!seen.insert(r.description).second) continue;
      out.rules.push_back(r);
    }
  }
  return out;
}

std::vector<smt::VarId> declare_fields(smt::Solver& solver,
                                       const telemetry::RowLayout& layout) {
  LEJIT_REQUIRE(solver.num_vars() == 0,
                "declare_fields requires a fresh solver");
  std::vector<smt::VarId> vars;
  vars.reserve(layout.fields.size());
  for (const auto& f : layout.fields)
    vars.push_back(solver.add_var(f.name, 0, f.max_value));
  return vars;
}

void assert_rules(smt::Solver& solver, const RuleSet& set) {
  for (const Rule& r : set.rules) {
    LEJIT_REQUIRE(r.formula != nullptr, "rule without formula: " + r.description);
    solver.add(r.formula);
  }
}

std::vector<smt::VarId> declare_fields(smt::Backend& backend,
                                       const telemetry::RowLayout& layout) {
  LEJIT_REQUIRE(backend.num_vars() == 0,
                "declare_fields requires a fresh backend");
  std::vector<smt::VarId> vars;
  vars.reserve(layout.fields.size());
  for (const auto& f : layout.fields)
    vars.push_back(backend.add_var(f.name, 0, f.max_value));
  return vars;
}

void assert_rules(smt::Backend& backend, const RuleSet& set) {
  for (const Rule& r : set.rules) {
    LEJIT_REQUIRE(r.formula != nullptr, "rule without formula: " + r.description);
    backend.add(r.formula);
  }
}

std::vector<smt::Int> field_assignment(const telemetry::Window& w) {
  std::vector<smt::Int> a = telemetry::coarse_values(w);
  a.insert(a.end(), w.fine.begin(), w.fine.end());
  return a;
}

int field_index(const telemetry::RowLayout& layout, std::string_view name) {
  for (int i = 0; i < layout.num_fields(); ++i)
    if (layout.fields[static_cast<std::size_t>(i)].name == name) return i;
  return -1;
}

RuleSet manual_rules(const telemetry::RowLayout& layout,
                     const telemetry::Limits& limits) {
  using namespace smt;
  RuleSet set;

  std::vector<VarId> fine;
  for (int i = 0; i < layout.num_fields(); ++i)
    if (layout.fields[static_cast<std::size_t>(i)].is_fine)
      fine.push_back(VarId{i});
  const VarId total{field_index(layout, "total")};
  const VarId ecn{field_index(layout, "ecn")};
  const VarId egress{field_index(layout, "egress")};
  LEJIT_REQUIRE(!fine.empty() && total.index >= 0 && ecn.index >= 0 &&
                    egress.index >= 0,
                "layout missing expected telemetry fields");

  // C4 analogue: every fine reading within link bandwidth.
  {
    std::vector<Formula> fs;
    for (const VarId v : fine)
      fs.push_back(between(LinExpr(v), LinExpr(0), LinExpr(limits.bandwidth)));
    set.rules.push_back(Rule{
        .description = "forall t: 0 <= I_t <= BW",
        .kind = RuleKind::kManual,
        .formula = land(std::move(fs)),
        .uses_fine = true,
    });
  }
  // C5 analogue: exact accounting between granularities.
  {
    LinExpr sum;
    for (const VarId v : fine) sum += LinExpr(v);
    set.rules.push_back(Rule{
        .description = "sum_t I_t == total",
        .kind = RuleKind::kManual,
        .formula = eq(sum, LinExpr(total)),
        .uses_fine = true,
    });
  }
  // C6 analogue: congestion marks imply a burst.
  set.rules.push_back(Rule{
      .description = "ecn > 0 => max_t I_t >= BW/2",
      .kind = RuleKind::kManual,
      .formula = implies(gt(LinExpr(ecn), LinExpr(0)),
                         max_ge(fine, LinExpr(limits.burst_threshold()))),
      .uses_fine = true,
  });
  // C7 analogue: egress cannot exceed ingress within the window.
  set.rules.push_back(Rule{
      .description = "egress <= total",
      .kind = RuleKind::kManual,
      .formula = le(LinExpr(egress), LinExpr(total)),
      .uses_fine = false,
  });
  return set;
}

}  // namespace lejit::rules
