// Text syntax for rules: the operator-facing "logic plug-in" format.
//
// The paper's vision (§5) has operators swap rule sets like configuration.
// This parser reads a line-oriented rule language over the layout's field
// names, so rule sets can live in plain files:
//
//     # R1 is implied by the field domains; R2 and R3 of the paper:
//     sum(I) == total
//     ecn > 0 => max(I) >= 48
//     egress <= total
//     2*rtx + 5 <= ecn + 40
//
// Grammar (one rule per line, '#' starts a comment):
//     rule    := clause [ "=>" clause ]
//     clause  := operand cmp operand
//     cmp     := "<=" | ">=" | "==" | "!=" | "<" | ">"
//     operand := agg | lin
//     agg     := ("max" | "min") "(" "I" ")"        — over the fine fields
//     lin     := term (("+" | "-") term)*
//     term    := [int "*"] field | int | "sum" "(" "I" ")"
//
// max/min aggregates may appear only as a whole clause side (they desugar to
// And/Or over the fine variables); sum(I) is an ordinary linear term.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "rules/rule.hpp"

namespace lejit::rules {

struct ParseError {
  std::size_t line = 0;  // 1-based
  std::string message;
};

struct ParsedRules {
  RuleSet rules;
  std::vector<ParseError> errors;

  bool ok() const { return errors.empty(); }
};

// Parse a rule file against `layout`'s field names. Lines that fail to parse
// are reported in `errors` and skipped; valid lines still produce rules.
ParsedRules parse_rules(std::string_view text,
                        const telemetry::RowLayout& layout);

}  // namespace lejit::rules
