#include "rules/miner.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace lejit::rules {

namespace {

using smt::Formula;
using smt::LinExpr;
using smt::VarId;
using telemetry::Window;

Int quantile_of(std::vector<Int> sorted, double q) {
  LEJIT_ASSERT(!sorted.empty(), "quantile of empty sample");
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct FieldColumn {
  std::string name;
  VarId var;
  Int domain_hi = 0;
  bool is_fine = false;
  std::vector<Int> values;  // per training window
};

}  // namespace

namespace {

// The actual miner; the public mine_rules wraps it with instrumentation so
// the validated path's recursion is not double-counted.
MinerReport mine_rules_inner(std::span<const Window> train,
                             const telemetry::RowLayout& layout,
                             const telemetry::Limits& limits,
                             const MinerConfig& config) {
  LEJIT_REQUIRE(!train.empty(), "cannot mine rules from an empty train set");

  // Confidence filtering: mine on a subset, validate on the held-out rest,
  // and drop any rule the holdout contradicts. Interleaved (stride) split so
  // both sides see every rack's behaviour.
  if (config.validate_fraction > 0.0 && train.size() >= 8) {
    const auto stride = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::llround(1.0 / config.validate_fraction)));
    std::vector<Window> mine_set, holdout;
    for (std::size_t i = 0; i < train.size(); ++i) {
      if (i % stride == 0)
        holdout.push_back(train[i]);
      else
        mine_set.push_back(train[i]);
    }
    MinerConfig inner = config;
    inner.validate_fraction = 0.0;
    MinerReport mined = mine_rules_inner(mine_set, layout, limits, inner);

    std::vector<std::vector<Int>> holdout_assignments;
    holdout_assignments.reserve(holdout.size());
    for (const Window& w : holdout)
      holdout_assignments.push_back(field_assignment(w));

    MinerReport filtered;
    for (Rule& rule : mined.rules.rules) {
      bool holds = true;
      for (const auto& a : holdout_assignments) {
        if (!rule.formula->eval(a)) {
          holds = false;
          break;
        }
      }
      if (!holds) {
        ++filtered.dropped_by_validation;
        continue;
      }
      switch (rule.kind) {
        case RuleKind::kBound: ++filtered.bounds; break;
        case RuleKind::kSumEquality: ++filtered.sums; break;
        case RuleKind::kImplication: ++filtered.implications; break;
        case RuleKind::kPairwise: ++filtered.pairwise; break;
        case RuleKind::kManual: break;
      }
      filtered.rules.rules.push_back(std::move(rule));
    }
    return filtered;
  }

  // (Base path; the validated path above recurses into this one.)
  const int nf = layout.num_fields();
  const std::size_t n = train.size();

  // Column-major view of the training data, canonical field order.
  std::vector<FieldColumn> cols(static_cast<std::size_t>(nf));
  for (int i = 0; i < nf; ++i) {
    const auto& spec = layout.fields[static_cast<std::size_t>(i)];
    FieldColumn& c = cols[static_cast<std::size_t>(i)];
    c.name = spec.name;
    c.var = VarId{i};
    c.domain_hi = spec.max_value;
    c.is_fine = spec.is_fine;
    c.values.reserve(n);
  }
  std::vector<Int> peaks;  // max_t I_t per window
  peaks.reserve(n);
  for (const Window& w : train) {
    const std::vector<Int> a = field_assignment(w);
    LEJIT_ASSERT(static_cast<int>(a.size()) == nf, "assignment/layout mismatch");
    for (int i = 0; i < nf; ++i)
      cols[static_cast<std::size_t>(i)].values.push_back(
          a[static_cast<std::size_t>(i)]);
    peaks.push_back(*std::max_element(w.fine.begin(), w.fine.end()));
  }

  std::vector<VarId> fine_vars;
  for (const auto& c : cols)
    if (c.is_fine) fine_vars.push_back(c.var);

  const auto slack_of = [&](Int range) {
    return static_cast<Int>(std::ceil(config.slack * static_cast<double>(range)));
  };

  MinerReport report;
  auto& rules = report.rules.rules;

  // --- bounds ---------------------------------------------------------------
  if (config.mine_bounds) {
    for (const auto& c : cols) {
      const auto [mn_it, mx_it] =
          std::minmax_element(c.values.begin(), c.values.end());
      const Int s = slack_of(c.domain_hi);
      const Int lo = std::max<Int>(0, *mn_it - s);
      const Int hi = std::min<Int>(c.domain_hi, *mx_it + s);
      if (lo > 0) {
        rules.push_back(Rule{
            .description = c.name + " >= " + std::to_string(lo),
            .kind = RuleKind::kBound,
            .formula = smt::ge(LinExpr(c.var), LinExpr(lo)),
            .uses_fine = c.is_fine,
        });
        ++report.bounds;
      }
      if (hi < c.domain_hi) {
        rules.push_back(Rule{
            .description = c.name + " <= " + std::to_string(hi),
            .kind = RuleKind::kBound,
            .formula = smt::le(LinExpr(c.var), LinExpr(hi)),
            .uses_fine = c.is_fine,
        });
        ++report.bounds;
      }
    }
  }

  // --- accounting -------------------------------------------------------------
  const int total_idx = field_index(layout, "total");
  if (config.mine_sum && total_idx >= 0 && !fine_vars.empty()) {
    bool holds = true;
    for (std::size_t w = 0; w < n && holds; ++w) {
      Int sum = 0;
      for (const auto& c : cols)
        if (c.is_fine) sum += c.values[w];
      holds = sum == cols[static_cast<std::size_t>(total_idx)].values[w];
    }
    if (holds) {
      LinExpr sum;
      for (const VarId v : fine_vars) sum += LinExpr(v);
      rules.push_back(Rule{
          .description = "sum(I) == total",
          .kind = RuleKind::kSumEquality,
          .formula = smt::eq(sum, LinExpr(VarId{total_idx})),
          .uses_fine = true,
      });
      ++report.sums;
    }
  }

  // Helper: emit antecedent ⇒ consequent with support/triviality filters.
  const auto emit_implication = [&](Formula antecedent, Formula consequent,
                                    std::string desc, bool uses_fine,
                                    std::size_t support) {
    if (support < static_cast<std::size_t>(config.min_support)) return;
    if (consequent->kind() == smt::FormulaKind::kTrue) return;
    rules.push_back(Rule{
        .description = std::move(desc),
        .kind = RuleKind::kImplication,
        .formula = smt::implies(std::move(antecedent), std::move(consequent)),
        .uses_fine = uses_fine,
    });
    ++report.implications;
  };

  // --- burst logic ---------------------------------------------------------------
  if (config.mine_burst && !fine_vars.empty()) {
    for (const char* trigger : {"ecn", "rtx"}) {
      const int ti = field_index(layout, trigger);
      if (ti < 0) continue;
      const auto& tv = cols[static_cast<std::size_t>(ti)].values;

      // trigger > 0 ⇒ max(I) >= c     with c = min peak among positives
      Int c_pos = limits.bandwidth;
      std::size_t support_pos = 0;
      // trigger == 0 ⇒ max(I) <= c'   with c' = max peak among zeros
      Int c_zero = 0;
      std::size_t support_zero = 0;
      for (std::size_t w = 0; w < n; ++w) {
        if (tv[w] > 0) {
          c_pos = std::min(c_pos, peaks[w]);
          ++support_pos;
        } else {
          c_zero = std::max(c_zero, peaks[w]);
          ++support_zero;
        }
      }
      const Int s = slack_of(limits.bandwidth);
      if (support_pos > 0 && c_pos - s > 0) {
        std::ostringstream d;
        d << trigger << " > 0 => max(I) >= " << (c_pos - s);
        emit_implication(smt::gt(LinExpr(VarId{ti}), LinExpr(0)),
                         smt::max_ge(fine_vars, LinExpr(c_pos - s)), d.str(),
                         true, support_pos);
      }
      if (support_zero > 0 && c_zero + s < limits.bandwidth) {
        std::ostringstream d;
        d << trigger << " == 0 => max(I) <= " << (c_zero + s);
        emit_implication(smt::eq(LinExpr(VarId{ti}), LinExpr(0)),
                         smt::max_le(fine_vars, LinExpr(c_zero + s)), d.str(),
                         true, support_zero);
      }
    }
  }

  // --- conditional bounds -------------------------------------------------------
  // Threshold implications mined at per-field quantiles, in both directions,
  // over both fine and coarse targets:
  //   cond <= θ ⇒ target <= hi        cond >= θ ⇒ target >= lo
  if (config.mine_conditionals) {
    for (const auto& cond : cols) {
      if (cond.is_fine) continue;
      std::vector<Int> sorted = cond.values;
      std::sort(sorted.begin(), sorted.end());
      for (const double q : config.quantiles) {
        const Int theta = quantile_of(sorted, q);
        for (const auto& target : cols) {
          if (&target == &cond) continue;
          // Aggregate over supporting windows on each side of θ.
          Int below_max = 0, above_min = target.domain_hi;
          std::size_t support_below = 0, support_above = 0;
          for (std::size_t w = 0; w < n; ++w) {
            if (cond.values[w] <= theta) {
              below_max = std::max(below_max, target.values[w]);
              ++support_below;
            } else {
              above_min = std::min(above_min, target.values[w]);
              ++support_above;
            }
          }
          const Int s = slack_of(target.domain_hi);
          const Int hi_bound = below_max + s;
          if (support_below > 0 && hi_bound < target.domain_hi) {
            std::ostringstream d;
            d << cond.name << " <= " << theta << " => " << target.name
              << " <= " << hi_bound;
            emit_implication(smt::le(LinExpr(cond.var), LinExpr(theta)),
                             smt::le(LinExpr(target.var), LinExpr(hi_bound)),
                             d.str(), cond.is_fine || target.is_fine,
                             support_below);
          }
          const Int lo_bound = above_min - s;
          if (support_above > 0 && lo_bound > 0) {
            std::ostringstream d;
            d << cond.name << " > " << theta << " => " << target.name
              << " >= " << lo_bound;
            emit_implication(smt::gt(LinExpr(cond.var), LinExpr(theta)),
                             smt::ge(LinExpr(target.var), LinExpr(lo_bound)),
                             d.str(), cond.is_fine || target.is_fine,
                             support_above);
          }
        }
        // cond > θ ⇒ a burst-strength floor on the window peak.
        if (!fine_vars.empty()) {
          Int peak_min = limits.bandwidth;
          std::size_t support = 0;
          for (std::size_t w = 0; w < n; ++w) {
            if (cond.values[w] > theta) {
              peak_min = std::min(peak_min, peaks[w]);
              ++support;
            }
          }
          const Int c = peak_min - slack_of(limits.bandwidth);
          if (support > 0 && c > 0) {
            std::ostringstream d;
            d << cond.name << " > " << theta << " => max(I) >= " << c;
            emit_implication(smt::gt(LinExpr(cond.var), LinExpr(theta)),
                             smt::max_ge(fine_vars, LinExpr(c)), d.str(), true,
                             support);
          }
        }
      }
    }
  }

  // --- pairwise coarse relations ------------------------------------------------
  if (config.mine_pairwise) {
    for (const auto& f : cols) {
      if (f.is_fine) continue;
      for (const auto& g : cols) {
        if (g.is_fine || &f == &g) continue;
        for (const Int k : config.multipliers) {
          // Minimal c with f <= k*g + c across all training windows.
          Int c_min = -f.domain_hi;
          for (std::size_t w = 0; w < n; ++w)
            c_min = std::max(c_min, f.values[w] - k * g.values[w]);
          const Int c = c_min + slack_of(f.domain_hi);
          // Skip rules no tighter than f's own upper bound.
          if (c >= f.domain_hi) continue;
          std::ostringstream d;
          d << f.name << " <= " << k << "*" << g.name
            << (c >= 0 ? " + " : " - ") << (c >= 0 ? c : -c);
          rules.push_back(Rule{
              .description = d.str(),
              .kind = RuleKind::kPairwise,
              .formula = smt::le(LinExpr(f.var),
                                 Int(k) * LinExpr(g.var) + LinExpr(c)),
              .uses_fine = false,
          });
          ++report.pairwise;
        }
      }
    }
  }

  // Different quantiles can yield byte-identical rules; keep the first of
  // each and fix up the per-family counts.
  {
    std::set<std::string_view> seen;
    MinerReport deduped;
    deduped.dropped_by_validation = report.dropped_by_validation;
    for (Rule& rule : report.rules.rules) {
      if (!seen.insert(rule.description).second) continue;
      switch (rule.kind) {
        case RuleKind::kBound: ++deduped.bounds; break;
        case RuleKind::kSumEquality: ++deduped.sums; break;
        case RuleKind::kImplication: ++deduped.implications; break;
        case RuleKind::kPairwise: ++deduped.pairwise; break;
        case RuleKind::kManual: break;
      }
      deduped.rules.rules.push_back(std::move(rule));
    }
    report = std::move(deduped);
  }
  return report;
}

}  // namespace

MinerReport mine_rules(std::span<const Window> train,
                       const telemetry::RowLayout& layout,
                       const telemetry::Limits& limits,
                       const MinerConfig& config) {
  const obs::Span span(obs::Phase::kRuleMining);
  const obs::Timer timer;
  MinerReport report = mine_rules_inner(train, layout, limits, config);
  if (obs::metrics_enabled()) {
    auto& registry = obs::MetricsRegistry::instance();
    static obs::Counter& c_runs = registry.counter("miner.runs");
    static obs::Counter& c_rules = registry.counter("miner.rules_mined");
    static obs::Counter& c_dropped =
        registry.counter("miner.dropped_by_validation");
    static obs::Gauge& g_duration = registry.gauge("miner.last_duration_ms");
    c_runs.inc();
    c_rules.add(static_cast<std::int64_t>(report.rules.size()));
    c_dropped.add(static_cast<std::int64_t>(report.dropped_by_validation));
    g_duration.set(timer.elapsed_ms());
  }
  LEJIT_LOG_INFO("mined " + std::to_string(report.rules.size()) +
                 " rules from " + std::to_string(train.size()) +
                 " windows in " + std::to_string(timer.elapsed_ms()) + " ms");
  return report;
}

}  // namespace lejit::rules
