// NetNomos-style rule miner.
//
// The paper obtains its rule sets ("716 rules" for imputation, "255 rules"
// for synthesis) by running NetNomos over the training racks. This module
// implements the part of that pipeline LeJIT needs: mining logic rules that
// hold on *every* training window, across the rule families the paper's
// examples draw from —
//   bounds          0 <= f <= hi                      (per field)
//   accounting      sum_t I_t == total                (cross-granularity tie)
//   burst logic     ecn > 0  ⇒  max_t I_t >= c        (R3-style implications)
//   conditionals    f <= θ   ⇒  I_t <= c              (per-slot, per-quantile)
//   pairwise        f <= k·g + c                      (coarse linear relations)
//
// Every mined bound is widened by a slack margin before being emitted so the
// rules generalize from the training racks to unseen racks (the miner's
// guarantee is "holds on train"; slack buys "holds on test" with high
// probability, mirroring how NetNomos-mined rules behave in the paper).
#pragma once

#include <span>

#include "rules/rule.hpp"

namespace lejit::rules {

struct MinerConfig {
  // Quantiles at which threshold implications are mined.
  std::vector<double> quantiles{0.25, 0.5, 0.75, 0.9};
  // Multipliers tried for pairwise linear rules f <= k*g + c.
  std::vector<Int> multipliers{1, 2, 4};
  // Minimum number of supporting windows for a conditional rule.
  int min_support = 8;
  // Fraction of a field's range by which mined bounds are widened.
  double slack = 0.05;
  // Fraction of the training windows held out for rule validation: rules
  // violated by any holdout window are dropped (NetNomos-style confidence
  // filtering — this is what makes mined rules transfer to unseen racks).
  // 0 disables validation.
  double validate_fraction = 0.25;
  // Rule-family switches.
  bool mine_bounds = true;
  bool mine_sum = true;
  bool mine_burst = true;
  bool mine_conditionals = true;
  bool mine_pairwise = true;
};

struct MinerReport {
  RuleSet rules;
  std::size_t bounds = 0;
  std::size_t sums = 0;
  std::size_t implications = 0;
  std::size_t pairwise = 0;
  std::size_t dropped_by_validation = 0;
};

// Mine rules that hold on every window of `train`.
MinerReport mine_rules(std::span<const telemetry::Window> train,
                       const telemetry::RowLayout& layout,
                       const telemetry::Limits& limits,
                       const MinerConfig& config = {});

}  // namespace lejit::rules
