// lejit::lint — static analysis over rule-set ASTs, run before any decode.
//
// LeJIT's correctness guarantee is only as good as the rule set handed to
// the solver: a contradictory set silently degrades decoding into dead-end
// recovery churn, and mined rules can be subsumed, unbounded, or
// overflow-prone long before any token is emitted. Following the
// constrained-decoding literature's move to precompute constraint structure
// ahead of inference (Outlines/SynCode-style grammar precompilation), this
// module analyzes the rules::Rule ASTs plus the telemetry::RowLayout once,
// offline, and reports:
//
//   E_UNSAT           the conjunction of all rules over the schema domains
//                     is unsatisfiable — no compliant row exists. A minimal
//                     conflict subset is extracted by greedy deletion on top
//                     of smt::Solver + smt::Budget.
//   E_FIELD_MISMATCH  a rule references a variable outside the layout (e.g.
//                     fine-field rules asserted against a coarse layout).
//   W_DEAD_RULE       the rule is implied by the rest of the set (checking
//                     Rest ∧ ¬r UNSAT); the implying subset is shrunk the
//                     same greedy way.
//   W_UNBOUNDED_FIELD the statically propagated interval of a field is its
//                     full declared domain — the rule set never constrains
//                     it, so telemetry imputation is LM-only there.
//   W_OVERFLOW        a linear expression's worst-case |coeff|·|bound|
//                     magnitude reaches the smt::kIntInf saturation rail,
//                     where saturating arithmetic may change semantics.
//   W_FINE_MISMATCH   Rule::uses_fine disagrees with the variables the
//                     formula actually references.
//   W_INCONCLUSIVE    an analysis check exhausted its smt::Budget — the
//                     verdict for that check is unknown, not clean.
//   I_DIGIT_WIDTH     the text format admits more digits than any feasible
//                     value of the field needs.
//   I_CONSTANT_FIELD  the feasible interval is a singleton: the rule set
//                     statically fixes the field's value.
//   I_CONGRUENT_FIELD the abstract interpreter (lejit::absint, DESIGN.md
//                     §16) proved the field always ≡ r (mod m): all but one
//                     residue class is statically infeasible, so most digit
//                     candidates at the last position will be masked.
//   I_RESTRICTED_LAST_DIGIT  the abstract interpreter proved some final
//                     decimal digits can never occur for the field (e.g. a
//                     multiple-of-4 field never ends in an odd digit).
//   I_SINGLE_RULE_CLUSTER  a connected component of the rule–field
//                     dependency graph (lejit::plan) contains exactly one
//                     rule — plan-sliced decode queries on its fields assert
//                     just that rule instead of the whole set.
//   I_STATIC_FIELD    no rule references the field at all: the decode plan
//                     serves its digit masks from the domain alone, without
//                     any solver call.
//
// Beyond diagnostics, the analyzer exports per-field static interval hulls
// (exact when the budget allows a binary search, else bounds-consistent
// over-approximations) plus known-feasible witness values; the decoder seeds
// its FeasibilityCache with them, so load-time analysis also warms the
// decode hot path (DESIGN.md §10).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rules/rule.hpp"
#include "smt/linexpr.hpp"
#include "smt/solver.hpp"
#include "telemetry/text.hpp"

namespace lejit::lint {

enum class Severity { kInfo = 0, kWarning = 1, kError = 2 };

enum class Code {
  kUnsatRuleSet,    // E_UNSAT
  kFieldMismatch,   // E_FIELD_MISMATCH
  kDeadRule,        // W_DEAD_RULE
  kUnboundedField,  // W_UNBOUNDED_FIELD
  kOverflowHazard,  // W_OVERFLOW
  kFineMismatch,    // W_FINE_MISMATCH
  kInconclusive,    // W_INCONCLUSIVE
  kDigitWidth,         // I_DIGIT_WIDTH
  kConstantField,      // I_CONSTANT_FIELD
  kSingleRuleCluster,  // I_SINGLE_RULE_CLUSTER
  kStaticField,        // I_STATIC_FIELD
  kCongruentField,     // I_CONGRUENT_FIELD
  kRestrictedLastDigit,  // I_RESTRICTED_LAST_DIGIT
};

std::string_view severity_name(Severity s) noexcept;
std::string_view code_name(Code c) noexcept;
Severity code_severity(Code c) noexcept;

struct Finding {
  Code code = Code::kInconclusive;
  Severity severity = Severity::kInfo;
  std::string message;  // self-contained: names the rules/fields involved
  // Indices into the analyzed RuleSet: the conflict core (kUnsatRuleSet),
  // the implying subset (kDeadRule, possibly empty = implied by the field
  // domains alone), or the single offending rule. Empty if field-scoped.
  std::vector<std::size_t> rule_indices;
  int field = -1;  // offending layout field, or -1 if rule-scoped
};

// Static interval hull of one layout field under the full rule set. Sound
// over-approximation of the feasible set: values outside `bounds` are
// definitely infeasible. `exact` means bounds are the true feasible min/max
// (binary search) — then both endpoints are known-feasible. `witnesses`
// holds values proven feasible by a model of the global sat check.
struct FieldHull {
  smt::Interval bounds = smt::Interval::empty();
  bool exact = false;
  std::vector<smt::Int> witnesses;
};

struct Config {
  // Search-node budget per solver check; exhaustion yields a
  // W_INCONCLUSIVE finding instead of a verdict.
  std::int64_t check_max_nodes = 200'000;
  // Wall-clock ceiling over the whole analysis (0 = none). Checks started
  // after the deadline resolve as inconclusive.
  std::int64_t deadline_ms = 0;
  // Dead/subsumed-rule analysis is O(n²) solver checks; large mined sets
  // can switch it off.
  bool check_dead_rules = true;
  // Greedy-shrink the implying subset for at most this many dead rules;
  // further dead rules are still reported, without a subset.
  int max_implying_subsets = 8;
  // Compute exact per-field hulls by binary search (else settle for the
  // free bounds-consistent propagation interval).
  bool exact_hulls = true;
  // Run the abstract interpreter (lejit::absint, DESIGN.md §16) over the
  // rule set: solver-free dead-rule proofs (they stop burning the check
  // budget), congruence/last-digit findings, tightened hull bounds, and
  // overflow hazards re-evaluated against fixpoint ranges instead of raw
  // domain bounds.
  bool absint = true;
};

struct Report {
  std::vector<Finding> findings;
  // Per layout field, index-aligned with RowLayout::fields. Empty intervals
  // when the rule set is UNSAT.
  std::vector<FieldHull> hulls;
  // Verdict of the global satisfiability check (kUnknown ⇒ budget ran out).
  smt::CheckResult satisfiable = smt::CheckResult::kUnknown;
  // Greedy-minimal conflict subset when satisfiable == kUnsat (irreducible:
  // removing any member makes the remainder satisfiable, budget permitting).
  std::vector<std::size_t> core;
  std::int64_t solver_checks = 0;  // solver checks the analysis spent

  std::size_t count(Severity s) const;
  std::size_t errors() const { return count(Severity::kError); }
  std::size_t warnings() const { return count(Severity::kWarning); }
  bool ok() const { return errors() == 0; }
};

// Analyze `set` against `layout`'s field domains. Never throws on bad rule
// sets — badness is the output. Updates obs counters lint.errors /
// lint.warnings / lint.checks and gauge lint.core_size when metrics are on.
Report analyze(const rules::RuleSet& set, const telemetry::RowLayout& layout,
               const Config& config = {});

// Human-readable report, one finding per line, severity-prefixed.
std::string to_text(const Report& report);
// Machine-readable report: {"satisfiable", "errors", "warnings", "core",
// "findings": [{severity, code, message, rules, field}], "hulls": [...]}.
std::string to_json(const Report& report);

}  // namespace lejit::lint
