#include "lint/lint.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "absint/absint.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "plan/plan.hpp"
#include "smt/formula.hpp"
#include "util/error.hpp"

namespace lejit::lint {

namespace {

using smt::CheckResult;
using smt::Formula;
using smt::Int;
using smt::Interval;

int digit_count(Int v) {
  int n = 1;
  while (v >= 10) {
    v /= 10;
    ++n;
  }
  return n;
}

// Worst-case |value| any atom expression of `f` can reach over the declared
// domains — tightened to the abstract fixpoint `ranges` where provided —
// saturated at smt::kIntInf. Hitting the rail means saturating interval
// arithmetic could, in principle, mask a real overflow.
Int worst_atom_magnitude(const Formula& f, const telemetry::RowLayout& layout,
                         const std::vector<Interval>* ranges = nullptr) {
  switch (f->kind()) {
    case smt::FormulaKind::kTrue:
    case smt::FormulaKind::kFalse:
      return 0;
    case smt::FormulaKind::kAtom: {
      const smt::LinExpr& e = f->atom_expr();
      Int mag = e.constant() < 0 ? -e.constant() : e.constant();
      for (const auto& [var, coeff] : e.terms()) {
        const Int abs_coeff = coeff < 0 ? -coeff : coeff;
        Int bound = smt::kIntInf;  // unknown variable: assume the worst
        if (var.index >= 0 && var.index < layout.num_fields()) {
          bound = layout.fields[static_cast<std::size_t>(var.index)].max_value;
          // Tighten with the abstract fixpoint range when available: the
          // rule set may bound the field far below its declared domain, and
          // solving never leaves the feasible region's interval hull.
          if (ranges && static_cast<std::size_t>(var.index) < ranges->size()) {
            const Interval& r = (*ranges)[static_cast<std::size_t>(var.index)];
            if (!r.is_empty()) {
              const Int abs_hi =
                  std::max(r.lo < 0 ? -r.lo : r.lo, r.hi < 0 ? -r.hi : r.hi);
              bound = std::min(bound, abs_hi);
            }
          }
        }
        mag = smt::sat_add(mag, smt::sat_mul(abs_coeff, bound));
      }
      return mag;
    }
    case smt::FormulaKind::kAnd:
    case smt::FormulaKind::kOr: {
      Int mag = 0;
      for (const auto& c : f->children())
        mag = std::max(mag, worst_atom_magnitude(c, layout, ranges));
      return mag;
    }
  }
  return 0;
}

std::string rule_label(const rules::RuleSet& set, std::size_t i) {
  return "#" + std::to_string(i) + " '" + set.rules[i].description + "'";
}

std::string join_rule_labels(const rules::RuleSet& set,
                             const std::vector<std::size_t>& indices) {
  std::string out;
  for (std::size_t k = 0; k < indices.size(); ++k) {
    if (k > 0) out += ", ";
    out += rule_label(set, indices[k]);
  }
  return out;
}

// The analysis driver: owns the budget bookkeeping and the two solvers
// (an incremental one whose base holds the full rule set, for hulls, and an
// assumption-only one for subset queries during core/dead-rule extraction).
class Analyzer {
 public:
  Analyzer(const rules::RuleSet& set, const telemetry::RowLayout& layout,
           const Config& config)
      : set_(set),
        layout_(layout),
        config_(config),
        deadline_ns_(config.deadline_ms > 0
                         ? obs::now_ns() + config.deadline_ms * 1'000'000
                         : 0) {}

  Report run() {
    // The abstract fixpoint (DESIGN.md §16) is solver-free and cheap, so it
    // runs first: structural overflow checks re-evaluate against its ranges,
    // hulls intersect them in, and dead-rule checks try an abstract proof
    // before spending any smt::Budget.
    if (config_.absint) {
      ai_ = absint::analyze(set_, layout_);
      if (!ai_->infeasible)
        for (const absint::AbsVal& a : ai_->fields)
          absint_ranges_.push_back(a.range);
    }
    structural_checks();
    partition_checks();
    declare();
    global_satisfiability();
    if (report_.satisfiable == CheckResult::kUnsat) {
      extract_core();
    } else {
      field_hulls();
      if (report_.satisfiable == CheckResult::kSat) absint_findings();
      if (report_.satisfiable == CheckResult::kSat && config_.check_dead_rules)
        dead_rules();
    }
    std::stable_sort(report_.findings.begin(), report_.findings.end(),
                     [](const Finding& a, const Finding& b) {
                       return static_cast<int>(a.severity) >
                              static_cast<int>(b.severity);
                     });
    report_.solver_checks = checks_;
    export_metrics();
    return std::move(report_);
  }

 private:
  smt::Budget budget() const {
    smt::Budget b;
    b.max_nodes = config_.check_max_nodes;
    b.deadline_ns = deadline_ns_;
    return b;
  }

  void add_finding(Code code, std::string message,
                   std::vector<std::size_t> rule_indices = {},
                   int field = -1) {
    report_.findings.push_back(Finding{code, code_severity(code),
                                       std::move(message),
                                       std::move(rule_indices), field});
  }

  // --- pass 0: solver-free structural checks --------------------------------
  void structural_checks() {
    valid_.assign(set_.size(), true);
    for (std::size_t i = 0; i < set_.size(); ++i) {
      const rules::Rule& r = set_.rules[i];
      if (r.formula == nullptr) {
        valid_[i] = false;
        add_finding(Code::kFieldMismatch,
                    "rule " + rule_label(set_, i) + " has no formula", {i});
        continue;
      }
      const std::vector<int> vars = rules::referenced_fields(r.formula);
      bool mismatch = false;
      bool touches_fine = false;
      for (const int v : vars) {
        if (v < 0 || v >= layout_.num_fields()) {
          mismatch = true;
        } else if (layout_.fields[static_cast<std::size_t>(v)].is_fine) {
          touches_fine = true;
        }
      }
      if (mismatch) {
        valid_[i] = false;
        add_finding(
            Code::kFieldMismatch,
            "rule " + rule_label(set_, i) +
                " references a field outside the layout's " +
                std::to_string(layout_.num_fields()) +
                " fields (was it built against a different schema?)",
            {i});
        continue;  // structurally broken: skip the remaining per-rule checks
      }
      if (touches_fine != r.uses_fine)
        add_finding(Code::kFineMismatch,
                    "rule " + rule_label(set_, i) + " is marked uses_fine=" +
                        (r.uses_fine ? "true" : "false") + " but its formula " +
                        (touches_fine ? "does" : "does not") +
                        " reference fine fields",
                    {i});
      const Int mag = worst_atom_magnitude(
          r.formula, layout_,
          absint_ranges_.empty() ? nullptr : &absint_ranges_);
      if (mag >= smt::kIntInf)
        add_finding(Code::kOverflowHazard,
                    "rule " + rule_label(set_, i) +
                        ": worst-case coefficient x domain-bound magnitude "
                        "reaches the Int saturation rail (2^60) — saturating "
                        "arithmetic may change this rule's semantics",
                    {i});
    }
  }

  // --- pass 0.5: dependency-graph partition diagnostics ---------------------
  // Solver-free: the same connected-component structure the decode-plan
  // compiler slices queries by (plan::partition), surfaced as hints about
  // how cheap each field's guidance will be.
  void partition_checks() {
    const plan::DecodePlan p = plan::partition(set_, layout_);
    for (std::size_t c = 0; c < p.clusters.size(); ++c) {
      const plan::Cluster& cluster = p.clusters[c];
      if (cluster.rules.size() != 1) continue;
      std::string fields;
      for (std::size_t k = 0; k < cluster.fields.size(); ++k) {
        if (k > 0) fields += ", ";
        fields += layout_.fields[static_cast<std::size_t>(cluster.fields[k])]
                      .name;
      }
      add_finding(Code::kSingleRuleCluster,
                  "rule " + rule_label(set_, cluster.rules.front()) +
                      " forms an independent single-rule cluster over {" +
                      fields + "}: plan-sliced decode queries there assert "
                      "only this rule",
                  {cluster.rules.front()});
    }
    for (int i = 0; i < layout_.num_fields(); ++i) {
      if (p.field_cluster[static_cast<std::size_t>(i)] >= 0) continue;
      add_finding(Code::kStaticField,
                  "field '" +
                      layout_.fields[static_cast<std::size_t>(i)].name +
                      "' is referenced by no rule: the decode plan serves "
                      "its digit masks from the domain alone, solver-free",
                  {}, i);
    }
  }

  void declare() {
    smt::SolverConfig sc;
    sc.incremental = true;  // propagated_bounds() needs the incremental base
    sc.max_nodes = config_.check_max_nodes;
    main_ = std::make_unique<smt::Solver>(sc);
    probe_ = std::make_unique<smt::Solver>(smt::SolverConfig{
        .max_nodes = config_.check_max_nodes, .incremental = false});
    main_vars_ = rules::declare_fields(*main_, layout_);
    rules::declare_fields(*probe_, layout_);
    for (std::size_t i = 0; i < set_.size(); ++i)
      if (valid_[i]) main_->add(set_.rules[i].formula);
  }

  // Satisfiability of a subset of rules (by index), optionally with one
  // extra formula conjoined, via assumptions on the assertion-free probe
  // solver. Counts the check and folds budget exhaustion into `unknown_`.
  CheckResult check_subset(const std::vector<std::size_t>& subset,
                           const Formula* extra = nullptr) {
    std::vector<Formula> fs;
    fs.reserve(subset.size() + 1);
    for (const std::size_t i : subset) fs.push_back(set_.rules[i].formula);
    if (extra != nullptr) fs.push_back(*extra);
    ++checks_;
    const CheckResult r = probe_->check_assuming(fs, budget());
    if (r == CheckResult::kUnknown) ++unknown_checks_;
    return r;
  }

  std::vector<std::size_t> valid_indices() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < set_.size(); ++i)
      if (valid_[i]) out.push_back(i);
    return out;
  }

  // --- pass 1: global satisfiability / vacuity ------------------------------
  void global_satisfiability() {
    ++checks_;
    report_.satisfiable = main_->check(budget());
    if (report_.satisfiable == CheckResult::kUnsat) {
      add_finding(Code::kUnsatRuleSet,
                  "the rule set is unsatisfiable over the schema domains: no "
                  "compliant row exists (conflict subset follows)");
    } else if (report_.satisfiable == CheckResult::kUnknown) {
      ++unknown_checks_;
      add_finding(Code::kInconclusive,
                  "global satisfiability check exhausted its budget (" +
                      std::to_string(config_.check_max_nodes) +
                      " nodes); the rule set may still be contradictory");
    } else {
      // Remember one full model: every value in it is a feasible witness.
      model_ = main_->model();
    }
  }

  // Greedy deletion-based unsat-core extraction: drop each rule whose
  // removal keeps the remainder UNSAT. The result is irreducible (checks
  // permitting): removing any surviving member makes the rest satisfiable.
  void extract_core() {
    std::vector<std::size_t> core = valid_indices();
    bool exact = true;
    for (std::size_t k = 0; k < core.size();) {
      std::vector<std::size_t> without = core;
      without.erase(without.begin() + static_cast<std::ptrdiff_t>(k));
      const CheckResult r = check_subset(without);
      if (r == CheckResult::kUnsat) {
        core = std::move(without);  // rule k is not needed for the conflict
      } else {
        if (r == CheckResult::kUnknown) exact = false;
        ++k;  // needed (or undecidable under budget): keep it
      }
    }
    report_.core = core;
    auto& f = report_.findings;
    // Attach the core to the kUnsatRuleSet finding emitted above.
    for (auto& finding : f) {
      if (finding.code != Code::kUnsatRuleSet) continue;
      finding.rule_indices = core;
      finding.message =
          "the rule set is unsatisfiable over the schema domains: no "
          "compliant row exists; " +
          std::string(exact ? "minimal" : "near-minimal (budget-limited)") +
          " conflict subset: " + join_rule_labels(set_, core);
    }
    if (!exact)
      add_finding(Code::kInconclusive,
                  "unsat-core shrinking hit the check budget; the reported "
                  "conflict subset may not be minimal");
    report_.hulls.assign(static_cast<std::size_t>(layout_.num_fields()),
                         FieldHull{});
  }

  // --- pass 2: per-field hulls, unbounded fields, width checks --------------
  void field_hulls() {
    report_.hulls.resize(static_cast<std::size_t>(layout_.num_fields()));
    for (int i = 0; i < layout_.num_fields(); ++i) {
      const auto& spec = layout_.fields[static_cast<std::size_t>(i)];
      FieldHull& hull = report_.hulls[static_cast<std::size_t>(i)];
      const smt::VarId var = main_vars_[static_cast<std::size_t>(i)];

      hull.bounds = main_->propagated_bounds(var);
      hull.exact = false;
      if (config_.exact_hulls && report_.satisfiable == CheckResult::kSat) {
        checks_ += 2;  // binary search: at least the two endpoint probes
        if (const auto exact = main_->try_feasible_interval(var, {}, budget())) {
          hull.bounds = *exact;
          hull.exact = true;
        } else {
          ++unknown_checks_;
          add_finding(Code::kInconclusive,
                      "exact hull of field '" + spec.name +
                          "' exhausted its budget; using the propagated "
                          "over-approximation",
                      {}, i);
        }
      }
      // The abstract fixpoint's interval is a sound over-approximation of
      // the same feasible set, so intersecting it in only tightens; an
      // exact hull cannot shrink (the abstraction contains its endpoints).
      if (!absint_ranges_.empty())
        hull.bounds = intersect(hull.bounds,
                                absint_ranges_[static_cast<std::size_t>(i)]);

      if (!model_.empty() &&
          hull.bounds.contains(model_[static_cast<std::size_t>(var.index)]))
        hull.witnesses.push_back(model_[static_cast<std::size_t>(var.index)]);

      if (report_.satisfiable != CheckResult::kSat || hull.bounds.is_empty())
        continue;
      const Interval domain{0, spec.max_value};
      if (hull.bounds == domain)
        add_finding(Code::kUnboundedField,
                    "field '" + spec.name + "' is unconstrained: its " +
                        (hull.exact ? "feasible interval" :
                                      "propagated interval") +
                        " is the full domain [0, " +
                        std::to_string(spec.max_value) +
                        "] — imputation there is LM-only",
                    {}, i);
      else if (hull.bounds.is_singleton())
        add_finding(Code::kConstantField,
                    "field '" + spec.name + "' is statically fixed to " +
                        std::to_string(hull.bounds.lo) + " by the rule set",
                    {}, i);
      if (digit_count(hull.bounds.hi) < digit_count(spec.max_value))
        add_finding(Code::kDigitWidth,
                    "field '" + spec.name + "' is formatted for " +
                        std::to_string(digit_count(spec.max_value)) +
                        " digits but no feasible value exceeds " +
                        std::to_string(hull.bounds.hi) + " (" +
                        std::to_string(digit_count(hull.bounds.hi)) +
                        " digits)",
                    {}, i);
    }
  }

  // --- pass 2.5: abstract-interpretation findings ---------------------------
  // Solver-free facts from the fixpoint's non-interval components: residue
  // classes and impossible final digits. Both shape decode behavior (most
  // last-digit candidates of a congruent field will be masked) but are
  // invisible to interval hulls.
  void absint_findings() {
    if (!ai_ || ai_->infeasible) return;
    for (int i = 0; i < layout_.num_fields(); ++i) {
      const auto& spec = layout_.fields[static_cast<std::size_t>(i)];
      const absint::AbsVal& a = ai_->field(i);
      if (a.is_bottom() || a.range.is_singleton()) continue;
      if (a.cong.mod > 1)
        add_finding(Code::kCongruentField,
                    "field '" + spec.name + "' is always congruent to " +
                        std::to_string(a.cong.rem) + " (mod " +
                        std::to_string(a.cong.mod) +
                        ") under the rule set: only 1 in " +
                        std::to_string(a.cong.mod) +
                        " values is feasible, so most digit candidates at "
                        "its last position will be masked",
                    {}, i);
      // Which final decimal digits can the field still end in? Meet the
      // fixpoint value with each residue class mod 10; bottom is a proof
      // that digit never occurs.
      std::string allowed;
      int excluded = 0;
      for (Int d = 0; d <= 9; ++d) {
        absint::AbsVal residue = absint::AbsVal::top(a.range.lo, a.range.hi);
        residue.cong = absint::Congruence{10, d};
        if (absint::meet(a, residue).is_bottom()) {
          ++excluded;
        } else {
          if (!allowed.empty()) allowed += ' ';
          allowed += static_cast<char>('0' + d);
        }
      }
      if (excluded > 0 && excluded < 10)
        add_finding(Code::kRestrictedLastDigit,
                    "field '" + spec.name + "' can only end in digit" +
                        (allowed.size() > 1 ? "s " : " ") + allowed +
                        " — the other " + std::to_string(excluded) +
                        " final digits are statically infeasible",
                    {}, i);
    }
  }

  // Abstract proof that the conjunction of `subset` and `negated` is
  // infeasible — a solver-free certificate that the subset implies the rule
  // `negated` came from (DESIGN.md §16.2).
  bool absint_implies(const std::vector<std::size_t>& subset,
                      const Formula& negated) {
    rules::RuleSet probe;
    probe.rules.reserve(subset.size() + 1);
    for (const std::size_t j : subset) probe.rules.push_back(set_.rules[j]);
    rules::Rule neg;
    neg.description = "(negated)";
    neg.formula = negated;
    probe.rules.push_back(std::move(neg));
    return absint::analyze(probe, layout_).infeasible;
  }

  // --- pass 3: dead/subsumed rules ------------------------------------------
  void dead_rules() {
    const std::vector<std::size_t> valid = valid_indices();
    if (valid.size() < 1) return;
    int subsets_left = config_.max_implying_subsets;
    for (const std::size_t i : valid) {
      std::vector<std::size_t> rest;
      rest.reserve(valid.size() - 1);
      for (const std::size_t j : valid)
        if (j != i) rest.push_back(j);
      const Formula negated = smt::lnot(set_.rules[i].formula);
      // Abstract proof first (DESIGN.md §16.2): fixpoint(Rest ∧ ¬r) hitting
      // bottom certifies the implication without burning any check budget —
      // and the subsequent subset shrinking stays abstract too.
      const bool abs_dead = ai_ && absint_implies(rest, negated);
      if (abs_dead) ++absint_dead_;
      const CheckResult r =
          abs_dead ? CheckResult::kUnsat : check_subset(rest, &negated);
      if (r == CheckResult::kUnknown) {
        add_finding(Code::kInconclusive,
                    "dead-rule check for " + rule_label(set_, i) +
                        " exhausted its budget",
                    {i});
        continue;
      }
      if (r != CheckResult::kUnsat) continue;  // kSat: rule does real work

      // Rest ∧ ¬r is UNSAT: r is implied. Shrink the implying subset the
      // same greedy way (¬r stays conjoined throughout).
      std::vector<std::size_t> implying = std::move(rest);
      if (subsets_left > 0) {
        --subsets_left;
        for (std::size_t k = 0; k < implying.size();) {
          std::vector<std::size_t> without = implying;
          without.erase(without.begin() + static_cast<std::ptrdiff_t>(k));
          const bool still_dead =
              abs_dead ? absint_implies(without, negated)
                       : check_subset(without, &negated) == CheckResult::kUnsat;
          if (still_dead)
            implying = std::move(without);
          else
            ++k;
        }
      }
      // Build the message before handing `implying` off: function-argument
      // evaluation order is unspecified, so reading it inside the same call
      // that moves it is a trap.
      std::string message =
          "rule " + rule_label(set_, i) + " is dead: implied by " +
          (implying.empty() ? std::string("the field domains alone")
                            : join_rule_labels(set_, implying));
      add_finding(Code::kDeadRule, std::move(message), std::move(implying));
    }
  }

  void export_metrics() {
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("lint.errors")
        .add(static_cast<std::int64_t>(report_.errors()));
    reg.counter("lint.warnings")
        .add(static_cast<std::int64_t>(report_.warnings()));
    reg.counter("lint.checks").add(checks_);
    reg.counter("lint.unknown_checks").add(unknown_checks_);
    reg.counter("lint.absint_dead_rules").add(absint_dead_);
    reg.gauge("lint.core_size")
        .set(static_cast<double>(report_.core.size()));
  }

  const rules::RuleSet& set_;
  const telemetry::RowLayout& layout_;
  const Config& config_;
  const std::int64_t deadline_ns_;

  std::vector<bool> valid_;  // structurally assertable rules
  std::unique_ptr<smt::Solver> main_;   // all valid rules asserted
  std::unique_ptr<smt::Solver> probe_;  // domains only; subsets via assumptions
  std::vector<smt::VarId> main_vars_;
  std::vector<Int> model_;  // one global model (kSat only)
  std::int64_t checks_ = 0;
  std::int64_t unknown_checks_ = 0;
  std::optional<absint::Analysis> ai_;     // fixpoint (config.absint)
  std::vector<Interval> absint_ranges_;    // its per-field intervals (kSat)
  std::int64_t absint_dead_ = 0;  // dead rules proven without the solver
  Report report_;
};

}  // namespace

std::string_view severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string_view code_name(Code c) noexcept {
  switch (c) {
    case Code::kUnsatRuleSet: return "E_UNSAT";
    case Code::kFieldMismatch: return "E_FIELD_MISMATCH";
    case Code::kDeadRule: return "W_DEAD_RULE";
    case Code::kUnboundedField: return "W_UNBOUNDED_FIELD";
    case Code::kOverflowHazard: return "W_OVERFLOW";
    case Code::kFineMismatch: return "W_FINE_MISMATCH";
    case Code::kInconclusive: return "W_INCONCLUSIVE";
    case Code::kDigitWidth: return "I_DIGIT_WIDTH";
    case Code::kConstantField: return "I_CONSTANT_FIELD";
    case Code::kSingleRuleCluster: return "I_SINGLE_RULE_CLUSTER";
    case Code::kStaticField: return "I_STATIC_FIELD";
    case Code::kCongruentField: return "I_CONGRUENT_FIELD";
    case Code::kRestrictedLastDigit: return "I_RESTRICTED_LAST_DIGIT";
  }
  return "?";
}

Severity code_severity(Code c) noexcept {
  switch (c) {
    case Code::kUnsatRuleSet:
    case Code::kFieldMismatch:
      return Severity::kError;
    case Code::kDeadRule:
    case Code::kUnboundedField:
    case Code::kOverflowHazard:
    case Code::kFineMismatch:
    case Code::kInconclusive:
      return Severity::kWarning;
    case Code::kDigitWidth:
    case Code::kConstantField:
    case Code::kSingleRuleCluster:
    case Code::kStaticField:
    case Code::kCongruentField:
    case Code::kRestrictedLastDigit:
      return Severity::kInfo;
  }
  return Severity::kInfo;
}

std::size_t Report::count(Severity s) const {
  std::size_t n = 0;
  for (const Finding& f : findings)
    if (f.severity == s) ++n;
  return n;
}

Report analyze(const rules::RuleSet& set, const telemetry::RowLayout& layout,
               const Config& config) {
  return Analyzer(set, layout, config).run();
}

std::string to_text(const Report& report) {
  std::string out;
  for (const Finding& f : report.findings) {
    out += severity_name(f.severity);
    out += " [";
    out += code_name(f.code);
    out += "] ";
    out += f.message;
    out += '\n';
  }
  out += "lint: " + std::to_string(report.errors()) + " error(s), " +
         std::to_string(report.warnings()) + " warning(s), " +
         std::to_string(report.findings.size() - report.errors() -
                        report.warnings()) +
         " note(s); " + std::to_string(report.solver_checks) +
         " solver checks\n";
  return out;
}

std::string to_json(const Report& report) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("satisfiable")
      .value(report.satisfiable == smt::CheckResult::kSat      ? "sat"
             : report.satisfiable == smt::CheckResult::kUnsat  ? "unsat"
                                                               : "unknown");
  w.key("errors").value(static_cast<std::int64_t>(report.errors()));
  w.key("warnings").value(static_cast<std::int64_t>(report.warnings()));
  w.key("solver_checks").value(report.solver_checks);
  w.key("core").begin_array();
  for (const std::size_t i : report.core)
    w.value(static_cast<std::int64_t>(i));
  w.end_array();
  w.key("findings").begin_array();
  for (const Finding& f : report.findings) {
    w.begin_object();
    w.key("severity").value(severity_name(f.severity));
    w.key("code").value(code_name(f.code));
    w.key("message").value(f.message);
    w.key("rules").begin_array();
    for (const std::size_t i : f.rule_indices)
      w.value(static_cast<std::int64_t>(i));
    w.end_array();
    if (f.field >= 0) w.key("field").value(f.field);
    w.end_object();
  }
  w.end_array();
  w.key("hulls").begin_array();
  for (const FieldHull& h : report.hulls) {
    w.begin_object();
    if (h.bounds.is_empty()) {
      w.key("empty").value(true);
    } else {
      w.key("lo").value(h.bounds.lo);
      w.key("hi").value(h.bounds.hi);
    }
    w.key("exact").value(h.exact);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace lejit::lint
